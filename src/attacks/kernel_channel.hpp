// The shared-kernel-image covert channel of paper §5.3.1 (Fig. 3).
//
// The sender encodes symbols from I = {0,1,2,3} as system calls — Signal,
// TCB_SetPriority, Poll, or idling — whose kernel text/data footprints
// differ. The receiver, time-sharing the core, prime&probes the LLC sets
// the kernel's syscall text occupies and counts LLC misses. With a shared
// kernel the miss count is correlated with the syscall; with cloned,
// coloured kernels it is not.
#ifndef TP_ATTACKS_KERNEL_CHANNEL_HPP_
#define TP_ATTACKS_KERNEL_CHANNEL_HPP_

#include <cstdint>

#include "attacks/channel_experiment.hpp"
#include "attacks/prime_probe.hpp"
#include "mi/leakage_test.hpp"
#include "mi/observations.hpp"

namespace tp::attacks {

class KernelChannelSender final : public SymbolSender {
 public:
  // `notification` and `tcb` are capability indices in the sender domain's
  // cspace (the notification and the sender's own TCB).
  KernelChannelSender(kernel::CapIdx notification, kernel::CapIdx tcb, std::uint64_t seed,
                      hw::Cycles slice_gap)
      : SymbolSender(4, seed, slice_gap), notification_(notification), tcb_(tcb) {}

  // The sender's own TCB capability only exists after the thread is
  // created; the harness injects it here.
  void SetCaps(kernel::CapIdx notification, kernel::CapIdx tcb) {
    notification_ = notification;
    tcb_ = tcb;
  }

 protected:
  void Transmit(kernel::UserApi& api, int symbol, std::size_t burst) override;

 private:
  kernel::CapIdx notification_;
  kernel::CapIdx tcb_;
};

class KernelProbeReceiver final : public SliceReceiver {
 public:
  KernelProbeReceiver(EvictionSet eviction_set, hw::Cycles slice_gap)
      : SliceReceiver(slice_gap), eviction_set_(std::move(eviction_set)) {}

 protected:
  // Output symbol: LLC misses while traversing the probe buffer (§5.3.1
  // uses performance counters for exactly this).
  double MeasureAndPrime(kernel::UserApi& api) override;

 private:
  EvictionSet eviction_set_;
};

// Builds the eviction set over the *boot* kernel's syscall text windows
// (entry + Signal + SetPriority + Poll), runs the experiment and returns
// the paired observations.
mi::Observations RunKernelChannel(Experiment& exp, std::size_t rounds, std::uint64_t seed);

}  // namespace tp::attacks

#endif  // TP_ATTACKS_KERNEL_CHANNEL_HPP_
