#include "attacks/interrupt_channel.hpp"

namespace tp::attacks {

void TimerTrojan::Transmit(kernel::UserApi& api, int symbol, std::size_t burst) {
  if (burst == 0) {
    api.SetTimer(timer_cap_, base_delay_ + static_cast<hw::Cycles>(symbol) * step_delay_);
  }
  // Sleep for the rest of the slice (the paper's Trojan idles after
  // programming the timer).
  api.Compute(1000);
}

double InterruptSpy::MeasureAndPrime(kernel::UserApi& api) {
  double sample = first_interrupt_offset_ >= 0.0
                      ? first_interrupt_offset_
                      : static_cast<double>(prev_end_ - slice_start_);
  slice_start_ = api.Now();
  prev_end_ = slice_start_;
  first_interrupt_offset_ = -1.0;
  return sample;
}

void InterruptSpy::IdleStep(kernel::UserApi& api) {
  hw::Cycles now = api.Now();
  hw::Cycles gap = now - prev_end_;
  if (first_interrupt_offset_ < 0.0 && gap >= irq_gap_ && gap < slice_gap_) {
    // The kernel handled an interrupt in the middle of our online time.
    first_interrupt_offset_ = static_cast<double>(prev_end_ - slice_start_);
  }
  api.Compute(1000);
  prev_end_ = api.Now();
}

}  // namespace tp::attacks
