#include "attacks/interrupt_channel.hpp"

namespace tp::attacks {

void TimerTrojan::Transmit(kernel::UserApi& api, int symbol, std::size_t burst) {
  if (burst == 0) {
    api.SetTimer(timer_cap_, base_delay_ + static_cast<hw::Cycles>(symbol) * step_delay_);
  }
  // Sleep for the rest of the slice (the paper's Trojan idles after
  // programming the timer).
  api.Compute(1000);
}

double InterruptSpy::MeasureAndPrime(kernel::UserApi& api) {
  double sample = first_interrupt_offset_ >= 0.0
                      ? first_interrupt_offset_
                      : static_cast<double>(prev_end_ - slice_start_);
  slice_start_ = api.Now();
  prev_end_ = slice_start_;
  first_interrupt_offset_ = -1.0;
  return sample;
}

void InterruptSpy::IdleStep(kernel::UserApi& api) {
  hw::Cycles now = api.Now();
  hw::Cycles gap = now - prev_end_;
  if (first_interrupt_offset_ < 0.0 && gap >= irq_gap_ && gap < slice_gap_) {
    // The kernel handled an interrupt in the middle of our online time.
    first_interrupt_offset_ = static_cast<double>(prev_end_ - slice_start_);
  }
  api.Compute(1000);
  prev_end_ = api.Now();
}

mi::Observations RunInterruptChannel(Experiment& exp, const InterruptChannelParams& params,
                                     std::size_t rounds, std::uint64_t seed) {
  hw::Machine& m = *exp.machine;
  hw::Cycles gap = exp.SliceGapThreshold();
  double tick_us = exp.timeslice_ms * 1000.0;
  kernel::CapIdx timer = exp.manager->GrantCap(
      *exp.sender_domain, exp.kernel->boot_info().device_timers[params.device_timer]);
  TimerTrojan trojan(timer, m.MicrosToCycles(params.base_delay_ticks * tick_us),
                     m.MicrosToCycles(params.step_delay_ticks * tick_us),
                     params.num_symbols, seed, gap);
  InterruptSpy spy(params.irq_gap, gap);
  exp.manager->StartThread(*exp.sender_domain, &trojan, 120, 0);
  exp.manager->StartThread(*exp.receiver_domain, &spy, 120, 0);
  return CollectObservations(exp, trojan, spy, rounds, /*sample_lag=*/1);
}

}  // namespace tp::attacks
