// The full intra-core channel matrix of paper Table 3: one runner per
// time-shared on-core resource, wiring the prime&probe programs of
// prime_probe.hpp into a two-domain experiment.
#ifndef TP_ATTACKS_INTRA_CORE_HPP_
#define TP_ATTACKS_INTRA_CORE_HPP_

#include <cstdint>
#include <functional>

#include "attacks/channel_experiment.hpp"
#include "mi/observations.hpp"

namespace tp::attacks {

enum class IntraCoreResource {
  kL1D,
  kL1I,
  kTlb,
  kBtb,
  kBhb,
  kL2,  // private L2 (x86 only): the paper's residual-prefetcher channel
};

const char* ResourceName(IntraCoreResource resource);

// True if the platform has the resource (the Sabre has no private L2).
bool ResourceAvailable(IntraCoreResource resource, const hw::MachineConfig& config);

// Runs the covert channel for `resource` in a fresh two-domain experiment
// under `scenario`; returns the paired (symbol, measurement) observations.
// `config_hook` mutates the kernel config after the scenario preset
// (ablation studies).
mi::Observations RunIntraCoreChannel(
    const hw::MachineConfig& machine_config, core::Scenario scenario,
    IntraCoreResource resource, std::size_t rounds, std::uint64_t seed,
    const std::function<void(kernel::KernelConfig&)>& config_hook = nullptr);

}  // namespace tp::attacks

#endif  // TP_ATTACKS_INTRA_CORE_HPP_
