#include "attacks/flush_channel.hpp"

namespace tp::attacks {

namespace {
constexpr std::size_t kMaxBursts = 16;
}

void DirtyLineSender::Transmit(kernel::UserApi& api, int symbol, std::size_t burst) {
  if (burst >= kMaxBursts) {
    api.Compute(400);
    return;
  }
  std::size_t lines = static_cast<std::size_t>(symbol) * lines_per_symbol_;
  for (std::size_t i = 0; i < lines; ++i) {
    api.Write(base_ + (i * line_size_) % buffer_bytes_);
  }
  if (lines == 0) {
    api.Compute(400);
  }
}

double FlushTimingReceiver::MeasureAndPrime(kernel::UserApi& api) {
  // Called at the first step of a new slice: sync().last_gap() is the
  // offline time just observed; online_end_ - slice_start_ was the previous
  // slice's online time.
  double sample = 0.0;
  if (observable_ == TimingObservable::kOffline) {
    sample = static_cast<double>(sync().last_gap());
  } else {
    sample = static_cast<double>(online_end_ - slice_start_);
  }
  slice_start_ = api.Now();
  online_end_ = slice_start_;
  return sample;
}

void FlushTimingReceiver::IdleStep(kernel::UserApi& api) {
  api.Compute(100);
  online_end_ = api.Now();
}

mi::Observations RunFlushChannel(Experiment& exp, const FlushChannelParams& params,
                                 std::size_t rounds, std::uint64_t seed) {
  const hw::MachineConfig& mc = exp.machine_config;
  std::size_t lines =
      params.lines_per_symbol != 0 ? params.lines_per_symbol : mc.l1d.TotalLines() / 4;
  hw::Cycles gap = exp.SliceGapThreshold();
  core::MappedBuffer sbuf =
      exp.manager->AllocBuffer(*exp.sender_domain, 2 * mc.l1d.size_bytes);
  DirtyLineSender sender(sbuf, lines, mc.l1d.line_size, params.num_symbols, seed, gap);
  FlushTimingReceiver receiver(params.observable, gap);
  exp.manager->StartThread(*exp.sender_domain, &sender, 120, 0);
  exp.manager->StartThread(*exp.receiver_domain, &receiver, 120, 0);
  return CollectObservations(exp, sender, receiver, rounds);
}

}  // namespace tp::attacks
