#include "attacks/flush_channel.hpp"

namespace tp::attacks {

namespace {
constexpr std::size_t kMaxBursts = 16;
}

void DirtyLineSender::Transmit(kernel::UserApi& api, int symbol, std::size_t burst) {
  if (burst >= kMaxBursts) {
    api.Compute(400);
    return;
  }
  std::size_t lines = static_cast<std::size_t>(symbol) * lines_per_symbol_;
  for (std::size_t i = 0; i < lines; ++i) {
    api.Write(base_ + (i * line_size_) % buffer_bytes_);
  }
  if (lines == 0) {
    api.Compute(400);
  }
}

double FlushTimingReceiver::MeasureAndPrime(kernel::UserApi& api) {
  // Called at the first step of a new slice: sync().last_gap() is the
  // offline time just observed; online_end_ - slice_start_ was the previous
  // slice's online time.
  double sample = 0.0;
  if (observable_ == TimingObservable::kOffline) {
    sample = static_cast<double>(sync().last_gap());
  } else {
    sample = static_cast<double>(online_end_ - slice_start_);
  }
  slice_start_ = api.Now();
  online_end_ = slice_start_;
  return sample;
}

void FlushTimingReceiver::IdleStep(kernel::UserApi& api) {
  api.Compute(100);
  online_end_ = api.Now();
}

}  // namespace tp::attacks
