// Covert/side-channel experiment harness.
//
// Intra-core channels follow the paper's evaluation protocol (§5.3): two
// security domains time-share a core under a given mitigation scenario; the
// sender encodes a symbol per timeslice, the receiver takes one measurement
// per timeslice, and the paired (symbol, measurement) observations feed the
// MI toolchain. Domains detect their own slice boundaries exactly as the
// paper's receivers do — by watching for cycle-counter jumps.
#ifndef TP_ATTACKS_CHANNEL_EXPERIMENT_HPP_
#define TP_ATTACKS_CHANNEL_EXPERIMENT_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "core/domain.hpp"
#include "core/time_protection.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "mi/observations.hpp"

namespace tp::attacks {

// Detects timeslice boundaries from gaps between successive Step times.
class SliceSync {
 public:
  explicit SliceSync(hw::Cycles gap_threshold) : threshold_(gap_threshold) {}

  // Call once per Step with the step-start time; afterwards call
  // StepEnd(now). Returns true when this step begins a new timeslice.
  bool NewSlice(hw::Cycles now) {
    bool fresh = last_end_ == 0 || now - last_end_ >= threshold_;
    last_gap_ = last_end_ == 0 ? 0 : now - last_end_;
    return fresh;
  }
  void StepEnd(hw::Cycles now) { last_end_ = now; }

  hw::Cycles last_gap() const { return last_gap_; }

 private:
  hw::Cycles threshold_;
  hw::Cycles last_end_ = 0;
  hw::Cycles last_gap_ = 0;
};

// A sender that transmits one symbol per timeslice, drawn uniformly from
// {0..num_symbols-1} by a seeded generator (the paper's random sequence).
class SymbolSender : public kernel::UserProgram {
 public:
  SymbolSender(int num_symbols, std::uint64_t seed, hw::Cycles slice_gap)
      : sync_(slice_gap), num_symbols_(num_symbols), rng_(seed), dist_(0, num_symbols - 1) {}

  void Step(kernel::UserApi& api) final;

  const std::vector<int>& symbols_sent() const { return symbols_; }

 protected:
  int num_symbols() const { return num_symbols_; }

  // Transmit a short burst encoding `symbol`; called repeatedly during the
  // slice with `burst` counting up from 0 at the slice start.
  virtual void Transmit(kernel::UserApi& api, int symbol, std::size_t burst) = 0;

 private:
  SliceSync sync_;
  int num_symbols_;
  std::mt19937_64 rng_;
  std::uniform_int_distribution<int> dist_;
  std::vector<int> symbols_;
  int current_symbol_ = -1;
  std::size_t burst_ = 0;
};

// A receiver producing one continuous measurement per timeslice.
class SliceReceiver : public kernel::UserProgram {
 public:
  explicit SliceReceiver(hw::Cycles slice_gap) : sync_(slice_gap) {}

  void Step(kernel::UserApi& api) final;

  const std::vector<double>& samples() const { return samples_; }

 protected:
  // Called at each slice start after the first; returns the measurement for
  // the *previous* sender slice (typically: probe, then re-prime).
  virtual double MeasureAndPrime(kernel::UserApi& api) = 0;
  // Called for every in-slice step after the boundary one.
  virtual void IdleStep(kernel::UserApi& api) { api.Compute(200); }

  SliceSync& sync() { return sync_; }

 private:
  SliceSync sync_;
  std::vector<double> samples_;
  bool primed_ = false;
};

// A two-domain experiment under a mitigation scenario.
struct Experiment {
  hw::MachineConfig machine_config;
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<kernel::Kernel> kernel;
  std::unique_ptr<core::DomainManager> manager;
  core::Domain* sender_domain = nullptr;    // domain 1
  core::Domain* receiver_domain = nullptr;  // domain 2
  double timeslice_ms = 1.0;

  hw::Cycles SliceGapThreshold() const {
    return machine->MicrosToCycles(timeslice_ms * 1000.0) / 8;
  }
};

struct ExperimentOptions {
  double timeslice_ms = 1.0;
  bool same_core = true;  // false: sender on core 0, receiver on core 1
  // Each domain's share of an equal colour split (<1 models the
  // reduced-allocation sweeps beyond the paper's 50% default; only
  // meaningful for clone-capable kernels).
  double colour_fraction = 1.0;
  // Extra kernel-config override applied after the scenario preset (e.g.
  // disabling padding for the Table 4 "no pad" row).
  bool disable_padding = false;
  std::vector<std::size_t> sender_device_timers;
  // Arbitrary kernel-config mutation applied last; used by the ablation
  // bench to remove one time-protection mechanism at a time.
  std::function<void(kernel::KernelConfig&)> config_hook;
};

Experiment MakeExperiment(const hw::MachineConfig& machine_config, core::Scenario scenario,
                          const ExperimentOptions& options = {});

// Process-global kernel-config override applied after every per-call
// config_hook in MakeExperiment; pass nullptr to clear. For tests that must
// force one kernel configuration (e.g. full flush) through a whole scenario
// sweep they cannot otherwise parameterise. Not thread-safe against
// concurrent MakeExperiment — set it before fanning out.
void SetGlobalConfigOverride(std::function<void(kernel::KernelConfig&)> hook);

// Runs the kernel until the receiver has `rounds` samples (or a generous
// cycle budget runs out) and pairs them with the sender's symbols.
// `sample_lag` shifts the pairing: prime&probe receivers observe sender
// slice i at the start of their slice i (lag 0); the interrupt spy's
// observation of slice i is only reported at the start of slice i+1
// (lag 1).
mi::Observations CollectObservations(Experiment& exp, const SymbolSender& sender,
                                     const SliceReceiver& receiver, std::size_t rounds,
                                     std::size_t sample_lag = 0);

}  // namespace tp::attacks

#endif  // TP_ATTACKS_CHANNEL_EXPERIMENT_HPP_
