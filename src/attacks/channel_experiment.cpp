#include "attacks/channel_experiment.hpp"

#include <cstdlib>

#include "core/padding.hpp"

namespace tp::attacks {

namespace {
std::function<void(kernel::KernelConfig&)> g_config_override;
}  // namespace

void SetGlobalConfigOverride(std::function<void(kernel::KernelConfig&)> hook) {
  g_config_override = std::move(hook);
}

void SymbolSender::Step(kernel::UserApi& api) {
  hw::Cycles now = api.Now();
  if (sync_.NewSlice(now) || current_symbol_ < 0) {
    current_symbol_ = dist_(rng_);
    symbols_.push_back(current_symbol_);
    burst_ = 0;
  }
  Transmit(api, current_symbol_, burst_++);
  sync_.StepEnd(api.Now());
}

void SliceReceiver::Step(kernel::UserApi& api) {
  hw::Cycles now = api.Now();
  if (sync_.NewSlice(now)) {
    if (primed_) {
      samples_.push_back(MeasureAndPrime(api));
    } else {
      MeasureAndPrime(api);  // warm-up: prime without recording
      primed_ = true;
    }
  } else {
    IdleStep(api);
  }
  sync_.StepEnd(api.Now());
}

Experiment MakeExperiment(const hw::MachineConfig& machine_config, core::Scenario scenario,
                          const ExperimentOptions& options) {
  Experiment exp;
  exp.machine_config = machine_config;
  exp.timeslice_ms = options.timeslice_ms;
  exp.machine = std::make_unique<hw::Machine>(machine_config);

  kernel::KernelConfig kc =
      core::MakeKernelConfig(scenario, *exp.machine, options.timeslice_ms);
  if (options.disable_padding) {
    kc.pad_switches = false;
  }
  if (options.config_hook) {
    options.config_hook(kc);
  }
  if (g_config_override) {
    g_config_override(kc);
  }
  exp.kernel = std::make_unique<kernel::Kernel>(*exp.machine, kc);
  exp.manager = std::make_unique<core::DomainManager>(*exp.kernel);

  // 50% of colours per domain (the paper's default) scaled by
  // colour_fraction, only meaningful for clone-capable kernels.
  std::vector<std::set<std::size_t>> colours(2);
  if (kc.clone_support) {
    colours = core::SplitColours(machine_config, 2, options.colour_fraction);
  }
  // Pad to the simulator's worst-case switch cost (a safe pad needs a WCET
  // analysis of *this* platform, §4.3; the paper's measured 58.8/62.5 µs
  // play the same role on the real hardware).
  hw::Cycles pad = kc.pad_switches
                       ? core::WorstCaseSwitchCycles(*exp.machine, kc.flush_mode)
                       : 0;

  core::DomainOptions sender_opts;
  sender_opts.id = 1;
  sender_opts.colours = colours[0];
  sender_opts.pad_cycles = pad;
  sender_opts.device_timers = options.sender_device_timers;
  exp.sender_domain = &exp.manager->CreateDomain(sender_opts);

  core::DomainOptions receiver_opts;
  receiver_opts.id = 2;
  receiver_opts.colours = colours[1];
  receiver_opts.pad_cycles = pad;
  exp.receiver_domain = &exp.manager->CreateDomain(receiver_opts);

  if (options.same_core) {
    exp.kernel->SetDomainSchedule(0, {1, 2});
  } else {
    exp.kernel->SetDomainSchedule(0, {1});
    if (exp.machine->num_cores() > 1) {
      exp.kernel->SetDomainSchedule(1, {2});
    }
  }
  return exp;
}

mi::Observations CollectObservations(Experiment& exp, const SymbolSender& sender,
                                     const SliceReceiver& receiver, std::size_t rounds,
                                     std::size_t sample_lag) {
  hw::Cycles slice = exp.machine->MicrosToCycles(exp.timeslice_ms * 1000.0);
  // Generous budget: two slices per round plus warm-up slack.
  std::size_t max_chunks = 4 * rounds + 64;
  for (std::size_t i = 0; i < max_chunks && receiver.samples().size() < rounds + sample_lag;
       ++i) {
    exp.kernel->RunFor(2 * slice);
  }

  mi::Observations obs;
  const std::vector<int>& symbols = sender.symbols_sent();
  const std::vector<double>& samples = receiver.samples();
  std::size_t n = std::min(symbols.size(), samples.size() - std::min(samples.size(), sample_lag));
  // Skip the first pair: it straddles the partially-warm start.
  for (std::size_t i = 1; i < n; ++i) {
    obs.Add(symbols[i], samples[i + sample_lag]);
  }
  return obs;
}

}  // namespace tp::attacks
