// Figure 3: kernel timing-channel matrix — conditional probability of LLC
// misses (output) given the sender's system call (input), on a shared
// kernel image (raw) vs cloned kernels (full time protection).
//
// Swept beyond the paper's points: timeslice {0.25, 1.0} ms and, for the
// protected mode, colour fraction {1.0, 0.5} of each domain's 50% split —
// protection must hold at every grid cell.
#include <cstdio>

#include "attacks/channel_experiment.hpp"
#include "attacks/kernel_channel.hpp"
#include "mi/channel_matrix.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"

namespace tp::scenarios {
namespace {

mi::Observations CellShard(const runner::GridCell& cell, const runner::Shard& shard) {
  attacks::Experiment exp = attacks::MakeExperiment(
      PlatformConfig(cell.platform), ScenarioByName(cell.mode), CellOptions(cell));
  return attacks::RunKernelChannel(exp, shard.rounds, shard.seed);
}

std::vector<runner::GridSpec> Grids() {
  runner::GridSpec raw;
  raw.root_seed = 0xF16'3;
  raw.rounds = bench::Scaled(1200);
  raw.platforms = {kHaswell, kSabre};
  raw.timeslices_ms = {0.25, 1.0};
  raw.modes = {"raw"};

  runner::GridSpec prot = raw;
  prot.modes = {"protected"};
  prot.colour_fractions = {1.0, 0.5};
  return {raw, prot};
}

void Report(RunContext&, const std::vector<runner::SweepCellResult>& results) {
  const runner::SweepCellResult& paper_cell = results.front();
  std::printf(
      "\nchannel matrix at the paper's point (%s; inputs: 0=Signal 1=SetPriority "
      "2=Poll 3=idle; output: LLC misses):\n%s",
      paper_cell.cell.Name().c_str(),
      mi::ChannelMatrix(paper_cell.observations, 24).ToAscii(16).c_str());
  std::printf(
      "\nShape check: raw shows a clear channel at every timeslice on both\n"
      "platforms; cloned, coloured kernels remove the correlation at every\n"
      "grid cell, including the halved colour allocation.\n");
}

const RegisterChannel registrar{{
    .name = "fig3_kernel_channel",
    .title = "Figure 3: timing channel via a shared kernel image",
    .paper = "x86: raw M=0.79b (n=255790), protected M=0.6mb (M0=0.1mb); "
             "Arm: raw M=20mb, protected 0.0mb",
    .kind = "channel",
    .contract = "protected cells clean; raw dirty (shared kernel image residue)",
    .grids = Grids,
    .cell_shard = CellShard,
    .leak_options = {.shuffles = 60},
    .report = Report,
}};

}  // namespace
}  // namespace tp::scenarios
