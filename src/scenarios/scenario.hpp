// The channel registry: every paper experiment is a named, enumerable,
// sweepable scenario.
//
// A ChannelSpec describes one figure/table reproduction: its name (the
// recorder's bench key), the GridSpec(s) spanning its evaluation axes, and
// the body that produces results. Channel-style scenarios supply a
// per-(cell, shard) experiment closure and are expanded uniformly through
// SweepEngine::RunChannelGrid — summary table, leakage tests and recording
// are shared driver code, not per-driver boilerplate. Cost-style scenarios
// (switch latency, IPC cycles, Splash slowdowns, ...) supply a custom body
// that still runs on the shared pool and recorder.
//
// Specs self-register into the global registry from static initialisers
// (`RegisterChannel` at namespace scope in each scenario file), so the
// tp_bench CLI, the sweep script and CI can enumerate every channel —
// nothing has to be added to a hand-maintained driver list, and a channel
// that exists cannot be silently skipped by the leakage gate.
#ifndef TP_SCENARIOS_SCENARIO_HPP_
#define TP_SCENARIOS_SCENARIO_HPP_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mi/leakage_test.hpp"
#include "runner/recorder.hpp"
#include "runner/runner.hpp"
#include "runner/sweep.hpp"

namespace tp::scenarios {

// Everything a scenario body needs: the shared host-thread pool, a sweep
// engine over it, and this scenario's recorder (bench name = spec name).
struct RunContext {
  const runner::ExperimentRunner& pool;
  runner::SweepEngine& engine;
  bench::Recorder& recorder;
  bool verbose = true;  // print tables/matrices; recording always happens
};

struct ChannelSpec {
  std::string name;   // registry key and recorder bench name
  std::string title;  // one-line heading ("Figure 3: ...")
  std::string paper;  // the paper's numbers for this experiment
  std::string kind;   // "channel" (MI cells, leak-gated) or "cost" (metrics)
  // What the taint-tracking contract checker proves for this scenario's
  // cells under TP_TAINT=1 (the `contract_clean` column of the README
  // table). Empty renders as "—".
  std::string contract;

  // Builds the scenario's grid(s). Called at run time, so TP_QUICK scaling
  // (runner/quick.hpp) applies to the invocation, not to process start-up.
  std::function<std::vector<runner::GridSpec>()> grids;

  // Channel scenarios: the experiment closure consumed by
  // SweepEngine::RunChannelGrid for every (cell, shard).
  runner::SweepEngine::CellShardFn cell_shard;
  mi::LeakageOptions leak_options;

  // Optional extra reporting after the uniform sweep summary (channel
  // matrices, per-symbol scatter tables, shape checks).
  std::function<void(RunContext&, const std::vector<runner::SweepCellResult>&)> report;

  // Cost scenarios: fully custom body (set instead of cell_shard).
  std::function<void(RunContext&)> run;

  bool is_channel() const { return static_cast<bool>(cell_shard); }
};

class ChannelRegistry {
 public:
  // Validates and adds a spec. Throws std::invalid_argument on an empty or
  // duplicate name, a missing body, or a body/kind mismatch.
  void Register(ChannelSpec spec);

  const ChannelSpec* Find(std::string_view name) const;  // nullptr when unknown
  std::vector<const ChannelSpec*> All() const;           // sorted by name
  std::size_t size() const { return specs_.size(); }

  // The process-wide registry all built-in scenarios self-register into.
  static ChannelRegistry& Global();

 private:
  std::vector<ChannelSpec> specs_;
};

// Registers into ChannelRegistry::Global() from a static initialiser:
//   const RegisterChannel registrar{{.name = "fig3_kernel_channel", ...}};
struct RegisterChannel {
  explicit RegisterChannel(ChannelSpec spec);
};

}  // namespace tp::scenarios

#endif  // TP_SCENARIOS_SCENARIO_HPP_
