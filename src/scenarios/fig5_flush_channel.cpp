// Figure 5: the cache-flush channel on Arm — receiver-observed offline time
// as a function of the sender's dirty cache footprint.
//
// Gridded beyond the paper's single (unpadded) point: the `nopad` cell is
// the paper's open channel (protection minus Requirement 4, a clear
// staircase); the `protected` cell adds switch padding and must be closed,
// making the flush channel visible to the leakage gate.
#include <cstdio>

#include "attacks/channel_experiment.hpp"
#include "attacks/flush_channel.hpp"
#include "mi/channel_matrix.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

attacks::FlushChannelParams Params(const hw::MachineConfig& mc) {
  attacks::FlushChannelParams params;
  params.lines_per_symbol = mc.l1d.TotalLines() / 8;
  params.num_symbols = 8;
  params.observable = attacks::TimingObservable::kOffline;
  return params;
}

mi::Observations CellShard(const runner::GridCell& cell, const runner::Shard& shard) {
  hw::MachineConfig mc = PlatformConfig(cell.platform);
  attacks::ExperimentOptions opt = CellOptions(cell);
  opt.disable_padding = cell.mode == "nopad";
  attacks::Experiment exp = attacks::MakeExperiment(mc, core::Scenario::kProtected, opt);
  return attacks::RunFlushChannel(exp, Params(mc), shard.rounds, shard.seed);
}

std::vector<runner::GridSpec> Grids() {
  runner::GridSpec grid;
  grid.root_seed = 0xF165;
  grid.rounds = bench::Scaled(1800, 256);
  grid.platforms = {kSabre};
  grid.timeslices_ms = {0.5};
  grid.modes = {"nopad", "protected"};
  return {grid};
}

void Report(RunContext&, const std::vector<runner::SweepCellResult>& results) {
  for (const runner::SweepCellResult& r : results) {
    if (r.cell.mode != "nopad") {
      continue;
    }
    hw::MachineConfig mc = PlatformConfig(r.cell.platform);
    hw::Machine probe(mc);
    std::size_t lines_per_symbol = Params(mc).lines_per_symbol;
    std::printf("\nscatter at %s:\n", r.cell.Name().c_str());
    PrintPerSymbolMeans(
        r.observations, "dirty cache sets (symbol)", "mean offline (us)",
        [&](int sym) {
          return std::to_string(static_cast<std::size_t>(sym) *
                                (lines_per_symbol / mc.l1d.associativity));
        },
        [&](double mean) {
          return Fmt("%.2f", probe.CyclesToMicros(static_cast<hw::Cycles>(mean)));
        });
    std::printf("\nchannel matrix (offline time vs dirty footprint):\n%s",
                mi::ChannelMatrix(r.observations, 24).ToAscii(16).c_str());
  }
  std::printf(
      "\nShape check: offline time increases monotonically with the dirty\n"
      "footprint; the channel is large without padding and closed with it.\n");
}

const RegisterChannel registrar{{
    .name = "fig5_flush_channel",
    .title = "Figure 5: cache-flush channel (Arm), unpadded vs padded",
    .paper = "receiver offline time vs sender dirty footprint; unmitigated "
             "M = 1.4 b at n = 1828; padding closes it",
    .kind = "channel",
    .contract = "all cells clean (pure timing channel, no residue)",
    .grids = Grids,
    .cell_shard = CellShard,
    .leak_options = {.shuffles = 60},
    .report = Report,
}};

}  // namespace
}  // namespace tp::scenarios
