// Table 3: mutual information (mb) of the intra-core timing channels —
// L1-D, L1-I, TLB, BTB, BHB and (x86) L2 — unmitigated, with a full cache
// flush, and with time protection, as a platform x resource x mode grid.
//
// Paper shapes: raw channels are large everywhere (except the weak Arm
// BTB); full flush and time protection close everything except a residual
// x86 L2 channel of ~50 mb caused by prefetcher state that no architected
// mechanism can scrub.
#include <cstdio>
#include <map>
#include <string>

#include "attacks/intra_core.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

attacks::IntraCoreResource ResourceByName(const std::string& name) {
  for (attacks::IntraCoreResource r :
       {attacks::IntraCoreResource::kL1D, attacks::IntraCoreResource::kL1I,
        attacks::IntraCoreResource::kTlb, attacks::IntraCoreResource::kBtb,
        attacks::IntraCoreResource::kBhb, attacks::IntraCoreResource::kL2}) {
    if (name == attacks::ResourceName(r)) {
      return r;
    }
  }
  throw std::invalid_argument("unknown intra-core resource: " + name);
}

mi::Observations CellShard(const runner::GridCell& cell, const runner::Shard& shard) {
  return attacks::RunIntraCoreChannel(PlatformConfig(cell.platform),
                                      ScenarioByName(cell.mode), ResourceByName(cell.variant),
                                      shard.rounds, shard.seed);
}

std::vector<runner::GridSpec> Grids() {
  runner::GridSpec x86;
  x86.root_seed = 0x7AB13;
  x86.rounds = bench::Scaled(900);
  x86.platforms = {kHaswell};
  x86.variants = {"L1-D", "L1-I", "TLB", "BTB", "BHB", "L2"};
  x86.modes = {"raw", "full flush", "protected"};

  runner::GridSpec arm = x86;
  arm.platforms = {kSabre};
  arm.variants = {"L1-D", "L1-I", "TLB", "BTB", "BHB"};  // the Sabre has no private L2
  return {x86, arm};
}

void Report(RunContext&, const std::vector<runner::SweepCellResult>& results) {
  // Paper numbers (mb), raw / full flush / protected, keyed platform|cache.
  const std::map<std::string, std::string> paper = {
      {std::string(kHaswell) + "|L1-D", "4000 / 0.5 / 0.6"},
      {std::string(kHaswell) + "|L1-I", "300 / 0.7 / 0.8"},
      {std::string(kHaswell) + "|TLB", "2300 / 0.5 / 16.8"},
      {std::string(kHaswell) + "|BTB", "1500 / 0.8 / 0.4"},
      {std::string(kHaswell) + "|BHB", "1000 / 0.5 / 0.0"},
      {std::string(kHaswell) + "|L2", "2700 / 2.3 / 50.5*"},
      {std::string(kSabre) + "|L1-D", "2000 / 1 / 30.2"},
      {std::string(kSabre) + "|L1-I", "2500 / 1.3 / 4.9"},
      {std::string(kSabre) + "|TLB", "600 / 0.5 / 1.9"},
      {std::string(kSabre) + "|BTB", "7.5 / 4.1 / 62.2"},
      {std::string(kSabre) + "|BHB", "1000 / 0 / 0.2"},
  };

  // Modes are the innermost grid axis, so each resource's raw / full-flush
  // / protected cells are consecutive.
  Table t({"platform", "cache", "raw M", "full-flush M (M0)", "protected M (M0)", "verdict",
           "paper raw/full/prot (mb)"});
  for (std::size_t c = 0; c + 3 <= results.size(); c += 3) {
    const mi::LeakageResult& raw = results[c].leakage;
    const mi::LeakageResult& full = results[c + 1].leakage;
    const mi::LeakageResult& prot = results[c + 2].leakage;
    std::string verdict;
    if (raw.leak && !full.leak && !prot.leak) {
      verdict = "closed by both";
    } else if (raw.leak && !full.leak && prot.leak) {
      verdict = "RESIDUAL under protection";
    } else if (!raw.leak) {
      verdict = "no raw channel";
    } else {
      verdict = "see M values";
    }
    const runner::GridCell& cell = results[c].cell;
    auto it = paper.find(cell.platform + "|" + cell.variant);
    t.AddRow({cell.platform, cell.variant,
              Fmt("%.1f", raw.MilliBits()) + (raw.leak ? "*" : ""),
              Fmt("%.1f", full.MilliBits()) + " (" + Fmt("%.1f", full.M0MilliBits()) + ")" +
                  (full.leak ? "*" : ""),
              Fmt("%.1f", prot.MilliBits()) + " (" + Fmt("%.1f", prot.M0MilliBits()) + ")" +
                  (prot.leak ? "*" : ""),
              verdict, it != paper.end() ? it->second : "-"});
  }
  std::printf("\n");
  t.Print();
  std::printf("(* = definite channel: M > M0 per the shuffle test)\n");
  std::printf(
      "\nShape check: every raw channel is large; full flush and time protection\n"
      "close them, except the x86 L2 where hidden prefetcher state leaks past\n"
      "time protection (the paper's central hardware-contract finding).\n");
}

const RegisterChannel registrar{{
    .name = "table3_intra_core",
    .title = "Table 3: intra-core timing channels (mb), raw / full flush / protected",
    .paper = "all closed on both platforms except x86 L2: 50.5mb residual from "
             "the prefetcher state machine (6.4mb with the data prefetcher off)",
    .kind = "channel",
    .contract = "full-flush and protected cells clean; raw dirty by design",
    .grids = Grids,
    .cell_shard = CellShard,
    .leak_options = {.shuffles = 50},
    .report = Report,
}};

}  // namespace
}  // namespace tp::scenarios
