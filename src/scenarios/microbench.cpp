// Host-throughput microbenchmarks of the simulator's hot paths and the
// kernel's primitive operations. These measure how fast the *model* runs on
// the host (ns/op), complementing the paper-reproduction scenarios which
// report *simulated* cycles. Hand-rolled timing loops — no external
// benchmark library — so the scenario registers unconditionally and its
// cells are wall-gated like every other channel.
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

class FlatContext final : public hw::TranslationContext {
 public:
  explicit FlatContext(hw::Asid asid) : asid_(asid) {}
  std::optional<hw::Translation> Translate(hw::VAddr vaddr) const override {
    if (hw::IsKernelAddress(vaddr)) {
      return hw::Translation{hw::PageAlignDown(hw::PaddrOfKernelVaddr(vaddr)), false};
    }
    return hw::Translation{hw::PageAlignDown(vaddr) + 0x100000, false};
  }
  void WalkPath(hw::VAddr vaddr, std::vector<hw::PAddr>& out) const override {
    out.push_back(0x7000000 + (hw::PageNumber(vaddr) % 512) * 8);
    out.push_back(0x7001000 + (hw::PageNumber(vaddr) % 512) * 8);
  }
  hw::Asid asid() const override { return asid_; }

 private:
  hw::Asid asid_;
};

struct Micro {
  const char* name;
  std::size_t iterations;                       // full-mode count
  std::function<void(std::size_t)> run;         // run exactly n operations
};

std::vector<Micro> Benches() {
  std::vector<Micro> benches;

  benches.push_back({"cache_access_hit", 1'000'000, [](std::size_t n) {
                       hw::Machine m(hw::MachineConfig::Haswell(1));
                       FlatContext ctx(1);
                       m.core(0).SetUserContext(&ctx);
                       m.core(0).SetKernelContext(&ctx, true);
                       m.core(0).Access(0x1000, hw::AccessKind::kRead);
                       for (std::size_t i = 0; i < n; ++i) {
                         m.core(0).Access(0x1000, hw::AccessKind::kRead);
                       }
                     }});

  benches.push_back({"cache_access_miss_stream", 400'000, [](std::size_t n) {
                       hw::Machine m(hw::MachineConfig::Haswell(1));
                       FlatContext ctx(1);
                       m.core(0).SetUserContext(&ctx);
                       m.core(0).SetKernelContext(&ctx, true);
                       hw::VAddr va = 0;
                       for (std::size_t i = 0; i < n; ++i) {
                         m.core(0).Access(va, hw::AccessKind::kRead);
                         va += 64;
                       }
                     }});

  benches.push_back({"branch_predicted", 1'000'000, [](std::size_t n) {
                       hw::Machine m(hw::MachineConfig::Haswell(1));
                       for (int i = 0; i < 64; ++i) {
                         m.core(0).Branch(0x1000, 0x2000, true, true);
                       }
                       for (std::size_t i = 0; i < n; ++i) {
                         m.core(0).Branch(0x1000, 0x2000, true, true);
                       }
                     }});

  // The address-decode fast path (shift/mask set indexing) exercised alone:
  // every probe hits a different set of the sliced LLC.
  benches.push_back({"llc_decode_sweep", 1'000'000, [](std::size_t n) {
                       hw::SetAssociativeCache llc("LLC", hw::MachineConfig::Haswell(1).llc,
                                                   hw::Indexing::kPhysical);
                       llc.AccessRun(0, 0, n, 64, false);
                     }});

  benches.push_back({"tlb_lookup_hit", 2'000'000, [](std::size_t n) {
                       hw::Tlb tlb("D-TLB", hw::MachineConfig::Haswell(1).dtlb);
                       tlb.Insert(0x42, 1, false);
                       for (std::size_t i = 0; i < n; ++i) {
                         tlb.Lookup(0x42, 1);
                       }
                     }});

  benches.push_back({"tlb_flush", 200'000, [](std::size_t n) {
                       hw::Machine m(hw::MachineConfig::Haswell(1));
                       FlatContext ctx(1);
                       m.core(0).SetUserContext(&ctx);
                       m.core(0).SetKernelContext(&ctx, true);
                       for (std::size_t i = 0; i < n; ++i) {
                         m.core(0).Access(0x5000, hw::AccessKind::kRead);
                         m.core(0).FlushTlbAll();
                       }
                     }});

  benches.push_back({"kernel_syscall_signal", 150'000, [](std::size_t n) {
                       hw::Machine machine(hw::MachineConfig::Haswell(1));
                       kernel::KernelConfig kc;
                       kc.timeslice_cycles = machine.MicrosToCycles(1e9);
                       kernel::Kernel k(machine, kc);
                       core::DomainManager mgr(k);
                       core::Domain& d = mgr.CreateDomain({.id = 1});
                       kernel::CapIdx cap = mgr.GrantCap(d, mgr.CreateNotification(d));

                       struct Sig final : kernel::UserProgram {
                         kernel::CapIdx n = 0;
                         void Step(kernel::UserApi& api) override { api.Signal(n); }
                       } prog;
                       prog.n = cap;
                       mgr.StartThread(d, &prog, 100, 0);
                       k.SetDomainSchedule(0, {1});
                       for (std::size_t i = 0; i < n; ++i) {
                         k.StepCore(0);
                       }
                     }});

  benches.push_back({"kernel_tick_domain_switch", 2'000, [](std::size_t n) {
                       hw::Machine machine(hw::MachineConfig::Haswell(1));
                       kernel::KernelConfig kc;
                       kc.clone_support = true;
                       kc.flush_mode = kernel::FlushMode::kOnCore;
                       kc.prefetch_shared_data = true;
                       kc.timeslice_cycles = 50'000;
                       kernel::Kernel k(machine, kc);
                       core::DomainManager mgr(k);
                       mgr.CreateDomain({.id = 1});
                       mgr.CreateDomain({.id = 2});
                       k.SetDomainSchedule(0, {1, 2});
                       for (std::size_t i = 0; i < n; ++i) {
                         k.RunFor(100'000);  // two protected domain switches
                       }
                     }});

  return benches;
}

void Run(RunContext& ctx) {
  Table t({"microbench", "ops", "ns/op"});
  // ns/op is a host-speed measurement: run the benches serially so they do
  // not contend with each other for cores.
  for (const Micro& bench : Benches()) {
    std::size_t n = bench::Scaled(bench.iterations, bench.iterations / 64);
    std::uint64_t t0 = bench::Recorder::NowNs();
    hw::ContractCapture capture;
    bench.run(n);
    hw::ContractTally contract = capture.Take();
    std::uint64_t wall = bench::Recorder::NowNs() - t0;
    double ns_per_op = static_cast<double>(wall) / static_cast<double>(n);
    t.AddRow({bench.name, std::to_string(n), Fmt("%.1f", ns_per_op)});
    bench::BenchRecord rec{.cell = bench.name,
                           .rounds = n,
                           .wall_ns = wall,
                           .metrics = {{"ns_per_op", ns_per_op}}};
    runner::ApplyContract(rec, contract);
    ctx.recorder.Add(std::move(rec));
  }
  if (ctx.verbose) {
    std::printf("\n");
    t.Print();
    std::printf("\n(host simulation throughput, not simulated time)\n");
  }
}

const RegisterChannel registrar{{
    .name = "microbench",
    .title = "Microbenchmarks: host throughput of the simulator's hot paths",
    .paper = "n/a (simulator implementation metric, not a paper figure)",
    .kind = "cost",
    .contract = "all cells clean",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
