// Table 8: performance impact of full time protection on Splash-2 when
// time-sharing the core with an idle domain, with and without switch
// padding — the effective CPU-bandwidth reduction from the increased
// context-switch latency.
//
// Paper: x86 mean 2.76% (no pad) / 3.38% (pad); Arm 0.75% / 1.09%. Max on
// ocean (x86) and raytrace (Arm); padding adds only a few tenths of a
// percent on top.
//
// Swept beyond the paper's point (50% colours per domain): colour fraction
// {1.0, 0.5} of the split — the cost of protection must stay bounded when
// each domain's cache allocation halves.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/padding.hpp"
#include "core/time_protection.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"
#include "workloads/splash.hpp"

namespace tp::scenarios {
namespace {

// Accesses completed while time-sharing with an idle domain for `slices`.
std::uint64_t RunTimeShared(const hw::MachineConfig& mc, workloads::SplashKind kind,
                            core::Scenario scenario, bool pad, double colour_fraction,
                            std::size_t slices) {
  hw::Machine machine(mc);
  kernel::KernelConfig kc = core::MakeKernelConfig(scenario, machine, /*timeslice_ms=*/1.0);
  kc.pad_switches = pad;
  kernel::Kernel kernel(machine, kc);
  core::DomainManager mgr(kernel);

  std::vector<std::set<std::size_t>> colours(2);
  if (kc.clone_support) {
    colours = core::SplitColours(mc, 2, colour_fraction);
  }
  hw::Cycles pad_cycles = pad ? core::WorstCaseSwitchCycles(machine, kc.flush_mode) : 0;
  core::Domain& work =
      mgr.CreateDomain({.id = 1, .colours = colours[0], .pad_cycles = pad_cycles});
  mgr.CreateDomain({.id = 2, .colours = colours[1], .pad_cycles = pad_cycles});
  // Domain 2 stays idle (no threads): its kernel's idle thread runs.

  core::MappedBuffer buf = mgr.AllocBuffer(work, workloads::WorkingSetBytes(kind, mc));
  workloads::SplashProgram prog(kind, buf, 0x5B1A5);
  mgr.StartThread(work, &prog, 100, 0);
  kernel.SetDomainSchedule(0, {1, 2});

  hw::Cycles slice = machine.MicrosToCycles(1000.0);
  kernel.RunFor(4 * slice);  // warm up
  std::uint64_t a0 = prog.accesses();
  kernel.RunFor(slices * slice);
  return prog.accesses() - a0;
}

struct CellOut {
  std::uint64_t accesses = 0;
  std::uint64_t wall_ns = 0;
  hw::ContractTally contract;
};

struct PlatformSummary {
  double worst = -1e9;
  double best = 1e9;
  std::string worst_name;
  std::string best_name;
  double geo = 1.0;
  std::size_t n = 0;

  void Fold(const std::string& name, double over) {
    if (over > worst) {
      worst = over;
      worst_name = name;
    }
    if (over < best) {
      best = over;
      best_name = name;
    }
    geo *= 1.0 + over;
    ++n;
  }
  double Mean() const {
    return n == 0 ? 0.0 : std::pow(geo, 1.0 / static_cast<double>(n)) - 1.0;
  }
};

void Run(RunContext& ctx) {
  std::size_t slices = bench::Scaled(24, 8);

  std::vector<std::string> kinds;
  for (workloads::SplashKind kind : workloads::AllSplashKinds()) {
    kinds.emplace_back(workloads::SplashName(kind));
  }

  // Raw baselines: one per platform x benchmark (colours unused).
  runner::GridSpec base_grid;
  base_grid.platforms = {kHaswell, kSabre};
  base_grid.variants = kinds;
  base_grid.modes = {"raw"};

  // Protected runs: pad off/on at full and halved colour allocation.
  runner::GridSpec prot_grid = base_grid;
  prot_grid.modes = {"nopad", "protected"};
  prot_grid.colour_fractions = {1.0, 0.5};

  auto run_cell = [&](const runner::GridCell& cell) {
    CellOut out;
    std::uint64_t t0 = bench::Recorder::NowNs();
    hw::ContractCapture capture;
    out.accesses = RunTimeShared(
        PlatformConfig(cell.platform), SplashKindByName(cell.variant),
        cell.mode == "raw" ? core::Scenario::kRaw : core::Scenario::kProtected,
        cell.mode == "protected", cell.colour_fraction, slices);
    out.contract = capture.Take();
    out.wall_ns = bench::Recorder::NowNs() - t0;
    return out;
  };
  std::vector<runner::GridCell> base_cells = runner::ExpandGrid(base_grid);
  std::vector<runner::GridCell> prot_cells = runner::ExpandGrid(prot_grid);
  std::vector<CellOut> base_out = ctx.engine.MapCells(base_grid, run_cell);
  std::vector<CellOut> prot_out = ctx.engine.MapCells(prot_grid, run_cell);

  // Raw accesses per platform/benchmark, for the overhead ratios.
  std::map<std::string, std::uint64_t> baseline;
  for (std::size_t i = 0; i < base_cells.size(); ++i) {
    baseline[base_cells[i].platform + "/" + base_cells[i].variant] = base_out[i].accesses;
    bench::BenchRecord rec{
        .cell = base_cells[i].Name(),
        .rounds = slices,
        .wall_ns = base_out[i].wall_ns,
        .threads = ctx.pool.threads(),
        .metrics = {{"accesses", static_cast<double>(base_out[i].accesses)}}};
    runner::ApplyContract(rec, base_out[i].contract);
    ctx.recorder.Add(std::move(rec));
  }

  // platform -> mode/fraction summary tables keyed like "nopad cf=1".
  std::map<std::string, std::map<std::string, PlatformSummary>> summaries;
  for (std::size_t i = 0; i < prot_cells.size(); ++i) {
    const runner::GridCell& cell = prot_cells[i];
    std::uint64_t base = baseline.at(cell.platform + "/" + cell.variant);
    double over = static_cast<double>(base) / static_cast<double>(prot_out[i].accesses) - 1.0;
    bench::BenchRecord rec{
        .cell = cell.Name(),
        .rounds = slices,
        .wall_ns = prot_out[i].wall_ns,
        .threads = ctx.pool.threads(),
        .metrics = {{"overhead", over},
                    {"accesses", static_cast<double>(prot_out[i].accesses)}}};
    runner::ApplyContract(rec, prot_out[i].contract);
    ctx.recorder.Add(std::move(rec));
    summaries[cell.platform][cell.mode + Fmt(" cf=%.3g", cell.colour_fraction)].Fold(
        cell.variant, over);
  }

  if (ctx.verbose) {
    for (const auto& [platform, by_config] : summaries) {
      std::printf("\n--- %s ---\n", platform.c_str());
      for (const auto& [config, s] : by_config) {
        std::printf("%-16s max %+.2f%% (%s), min %+.2f%% (%s), mean %+.2f%%\n",
                    config.c_str(), s.worst * 100.0, s.worst_name.c_str(), s.best * 100.0,
                    s.best_name.c_str(), s.Mean() * 100.0);
      }
    }
    std::printf(
        "\nShape checks: single-digit mean overhead; padding adds only a small\n"
        "increment on top of flushing + colouring, and halving the colour\n"
        "allocation keeps the cost bounded.\n");
  }
}

const RegisterChannel registrar{{
    .name = "table8_timeshared",
    .title = "Table 8: time-shared Splash-2 under full time protection",
    .paper = "50% colours: x86 mean 2.76% (no pad) / 3.38% (pad); Arm 0.75% / 1.09%",
    .kind = "cost",
    .contract = "protected and nopad cells clean; raw dirty by design",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
