#include "scenarios/summary.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>

namespace tp::scenarios {

void Header(const std::string& experiment, const std::string& paper_summary) {
  std::printf(
      "\n================================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf(
      "================================================================================\n");
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), c < row.size() ? row[c].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

void PrintSweepResults(const std::vector<runner::SweepCellResult>& results) {
  bool any_adaptive = false;
  for (const runner::SweepCellResult& r : results) {
    any_adaptive = any_adaptive || r.adaptive;
  }
  if (!any_adaptive) {
    Table t({"cell", "M (mb)", "M0 (mb)", "n", "verdict"});
    for (const runner::SweepCellResult& r : results) {
      t.AddRow({r.cell.Name(), Fmt("%.1f", r.leakage.MilliBits()),
                Fmt("%.1f", r.leakage.M0MilliBits()), std::to_string(r.leakage.samples),
                r.leakage.leak ? "CHANNEL" : "no channel"});
    }
    t.Print();
    return;
  }
  // Adaptive sweeps add the executed/budgeted rounds and the CI on M.
  Table t({"cell", "M (mb)", "CI (mb)", "M0 (mb)", "n", "rounds", "verdict"});
  std::size_t stopped = 0;
  std::uint64_t run = 0;
  std::uint64_t budget = 0;
  for (const runner::SweepCellResult& r : results) {
    std::string ci = "-";
    if (r.adaptive && !std::isnan(r.mi_ci_high)) {
      ci = "[" + Fmt("%.1f", r.mi_ci_low * 1000.0) + ", " +
           Fmt("%.1f", r.mi_ci_high * 1000.0) + "]";
    }
    std::string verdict = r.leakage.leak ? "CHANNEL" : "no channel";
    if (r.stopped_early) {
      verdict += " (early stop)";
      ++stopped;
    }
    run += r.rounds_run;
    budget += r.rounds;
    t.AddRow({r.cell.Name(), Fmt("%.1f", r.leakage.MilliBits()), ci,
              Fmt("%.1f", r.leakage.M0MilliBits()), std::to_string(r.leakage.samples),
              std::to_string(r.rounds_run) + "/" + std::to_string(r.rounds), verdict});
  }
  t.Print();
  std::printf("adaptive: %zu/%zu cell(s) stopped early, %.1f%% of the round budget executed\n",
              stopped, results.size(),
              budget > 0 ? 100.0 * static_cast<double>(run) / static_cast<double>(budget)
                         : 0.0);
}

void PrintPerSymbolMeans(const mi::Observations& obs, const std::string& symbol_header,
                         const std::string& value_header,
                         const std::function<std::string(int)>& symbol_label,
                         const std::function<std::string(double)>& value_format) {
  std::map<int, std::pair<double, std::size_t>> per_symbol;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    auto& [sum, n] = per_symbol[obs.inputs()[i]];
    sum += obs.outputs()[i];
    ++n;
  }
  Table t({symbol_header, value_header, "samples"});
  for (const auto& [sym, acc] : per_symbol) {
    double mean = acc.first / static_cast<double>(acc.second);
    t.AddRow({symbol_label ? symbol_label(sym) : std::to_string(sym),
              value_format ? value_format(mean) : Fmt("%.2f", mean),
              std::to_string(acc.second)});
  }
  t.Print();
}

}  // namespace tp::scenarios
