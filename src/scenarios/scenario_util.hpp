// Glue between the sweep grid axes and the simulator's factories: axis
// values map back to machine configs, scenario presets, splash kinds and
// factory-ready ExperimentOptions.
#ifndef TP_SCENARIOS_SCENARIO_UTIL_HPP_
#define TP_SCENARIOS_SCENARIO_UTIL_HPP_

#include <stdexcept>
#include <string>

#include "attacks/channel_experiment.hpp"
#include "core/time_protection.hpp"
#include "hw/machine.hpp"
#include "runner/quick.hpp"
#include "runner/sweep.hpp"
#include "workloads/splash.hpp"

namespace tp::scenarios {

// Canonical platform-axis values (double as the recorded cell-name prefix).
inline constexpr const char* kHaswell = "Haswell (x86)";
inline constexpr const char* kSabre = "Sabre (Arm)";

// Maps a GridSpec platform-axis value back to its machine config.
inline hw::MachineConfig PlatformConfig(const std::string& name, std::size_t cores = 1) {
  if (name == kHaswell) {
    return hw::MachineConfig::Haswell(cores);
  }
  if (name == kSabre) {
    return hw::MachineConfig::Sabre(cores);
  }
  throw std::invalid_argument("unknown platform axis value: " + name);
}

// Maps a GridSpec mode-axis value back to the scenario preset.
inline core::Scenario ScenarioByName(const std::string& name) {
  for (core::Scenario s : {core::Scenario::kRaw, core::Scenario::kColourReady,
                           core::Scenario::kFullFlush, core::Scenario::kProtected}) {
    if (name == core::ScenarioName(s)) {
      return s;
    }
  }
  throw std::invalid_argument("unknown mode axis value: " + name);
}

// Maps a GridSpec variant-axis value back to the Splash-2 benchmark.
inline workloads::SplashKind SplashKindByName(const std::string& name) {
  for (workloads::SplashKind kind : workloads::AllSplashKinds()) {
    if (name == workloads::SplashName(kind)) {
      return kind;
    }
  }
  throw std::invalid_argument("unknown splash variant: " + name);
}

// ExperimentOptions pre-filled from a grid cell's axes; neutral axis values
// (timeslice 0) keep the factory defaults.
inline attacks::ExperimentOptions CellOptions(const runner::GridCell& cell) {
  attacks::ExperimentOptions opt;
  if (cell.timeslice_ms > 0.0) {
    opt.timeslice_ms = cell.timeslice_ms;
  }
  opt.colour_fraction = cell.colour_fraction;
  return opt;
}

}  // namespace tp::scenarios

#endif  // TP_SCENARIOS_SCENARIO_UTIL_HPP_
