#include "scenarios/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tp::scenarios {

void ChannelRegistry::Register(ChannelSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("channel spec without a name");
  }
  if (Find(spec.name) != nullptr) {
    throw std::invalid_argument("duplicate channel name: " + spec.name);
  }
  if (spec.is_channel()) {
    if (spec.run) {
      throw std::invalid_argument("channel '" + spec.name +
                                  "' sets both cell_shard and a custom run body");
    }
    if (!spec.grids) {
      throw std::invalid_argument("channel '" + spec.name + "' has no grids");
    }
  } else if (!spec.run) {
    throw std::invalid_argument("channel '" + spec.name + "' has no body");
  }
  if (spec.kind.empty()) {
    spec.kind = spec.is_channel() ? "channel" : "cost";
  }
  if (spec.kind != "channel" && spec.kind != "cost") {
    throw std::invalid_argument("channel '" + spec.name + "' has unknown kind '" + spec.kind +
                                "'");
  }
  specs_.push_back(std::move(spec));
}

const ChannelSpec* ChannelRegistry::Find(std::string_view name) const {
  for (const ChannelSpec& spec : specs_) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

std::vector<const ChannelSpec*> ChannelRegistry::All() const {
  std::vector<const ChannelSpec*> all;
  all.reserve(specs_.size());
  for (const ChannelSpec& spec : specs_) {
    all.push_back(&spec);
  }
  // Name order, not registration order: static-initialiser order across
  // translation units is unspecified, and --list must be deterministic.
  std::sort(all.begin(), all.end(),
            [](const ChannelSpec* a, const ChannelSpec* b) { return a->name < b->name; });
  return all;
}

ChannelRegistry& ChannelRegistry::Global() {
  static ChannelRegistry registry;
  return registry;
}

RegisterChannel::RegisterChannel(ChannelSpec spec) {
  ChannelRegistry::Global().Register(std::move(spec));
}

}  // namespace tp::scenarios
