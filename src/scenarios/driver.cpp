#include "scenarios/driver.hpp"

#include <cstdio>
#include <iterator>
#include <stdexcept>

#include "scenarios/summary.hpp"

namespace tp::scenarios {

std::vector<const ChannelSpec*> SelectSpecs(const ChannelRegistry& registry,
                                            const std::vector<std::string>& only,
                                            std::string* error) {
  std::vector<const ChannelSpec*> all = registry.All();
  if (only.empty()) {
    return all;
  }
  std::vector<const ChannelSpec*> selected;
  for (const std::string& name : only) {
    const ChannelSpec* spec = registry.Find(name);
    if (spec == nullptr) {
      if (error != nullptr) {
        *error = "unknown channel '" + name + "'; registered channels:";
        for (const ChannelSpec* s : all) {
          *error += "\n  " + s->name;
        }
      }
      return {};
    }
    selected.push_back(spec);
  }
  return selected;
}

std::vector<runner::SweepCellResult> RunSpec(const ChannelSpec& spec,
                                             const runner::ExperimentRunner& pool,
                                             const RunSpecOptions& options) {
  const bool verbose = options.verbose;
  if (verbose) {
    Header(spec.title, spec.paper);
  }
  runner::SweepEngine engine(pool);
  bench::Recorder recorder(spec.name);
  RunContext ctx{pool, engine, recorder, verbose};

  if (!spec.is_channel()) {
    spec.run(ctx);
    return {};
  }

  const bool resuming =
      options.sweep.skip_cells != nullptr && !options.sweep.skip_cells->empty();
  std::size_t expanded = 0;
  std::vector<runner::SweepCellResult> results;
  for (const runner::GridSpec& grid : spec.grids()) {
    expanded += grid.num_cells();
    std::vector<runner::SweepCellResult> part =
        engine.RunChannelGrid(grid, spec.cell_shard, spec.leak_options, options.sweep);
    results.insert(results.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  if (results.empty()) {
    if (expanded > 0 && resuming) {
      return {};  // every cell was already recorded; nothing to rerun
    }
    // A channel that expands to zero cells would pass every downstream
    // gate (only the "total" record exists) — refuse instead.
    throw std::runtime_error("channel '" + spec.name + "' expanded to no grid cells");
  }
  if (verbose) {
    std::printf("\n");
    PrintSweepResults(results);
  }
  runner::RecordSweep(recorder, pool, results);
  // The spec's extra report expects the full grid; a resumed partial rerun
  // skips it (the numbers are already in the results file).
  if (spec.report && verbose && !resuming) {
    spec.report(ctx, results);
  }
  return results;
}

std::vector<runner::SweepCellResult> RunSpec(const ChannelSpec& spec,
                                             const runner::ExperimentRunner& pool,
                                             bool verbose) {
  RunSpecOptions options;
  options.verbose = verbose;
  return RunSpec(spec, pool, options);
}

std::string ListNames(const ChannelRegistry& registry) {
  std::string out;
  for (const ChannelSpec* spec : registry.All()) {
    out += spec->name;
    out += "\n";
  }
  return out;
}

std::string MarkdownTable(const ChannelRegistry& registry) {
  std::string out = "| channel | kind | reproduces | paper result | contract_clean |\n";
  out += "| --- | --- | --- | --- | --- |\n";
  for (const ChannelSpec* spec : registry.All()) {
    out += "| `" + spec->name + "` | " + spec->kind + " | " + spec->title + " | " +
           spec->paper + " | " + (spec->contract.empty() ? "—" : spec->contract) + " |\n";
  }
  return out;
}

}  // namespace tp::scenarios
