// Figure 7: Splash-2 slowdowns from cache colouring and kernel cloning,
// relative to the baseline kernel with an unpartitioned cache, as a
// platform x benchmark x {base, clone} x colour-fraction grid.
//
// Paper shapes: sub-1% (Arm) / sub-2% (x86) slowdowns for most benchmarks
// at 50% colours; raytrace (large working set) suffers most (6.5% at 50%
// on Arm, dropping to 2.5% at 75%); running on a *cloned* kernel adds
// almost nothing on top of colouring.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/time_protection.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"
#include "workloads/splash.hpp"

namespace tp::scenarios {
namespace {

// Cycles to complete `target_accesses` of `kind`, solo on the machine.
double RunOnce(const hw::MachineConfig& mc, workloads::SplashKind kind, bool clone,
               double colour_fraction, std::uint64_t target_accesses) {
  hw::Machine machine(mc);
  kernel::KernelConfig kc;
  kc.clone_support = clone;
  kc.timeslice_cycles = machine.MicrosToCycles(10'000.0);
  kernel::Kernel kernel(machine, kc);
  core::DomainManager mgr(kernel);

  core::DomainOptions opts;
  opts.id = 1;
  if (colour_fraction < 1.0) {
    opts.colours = core::SplitColours(mc, 1, colour_fraction)[0];
  }
  core::Domain& d = mgr.CreateDomain(opts);
  core::MappedBuffer buf = mgr.AllocBuffer(d, workloads::WorkingSetBytes(kind, mc));
  workloads::SplashProgram prog(kind, buf, /*seed=*/0x5B1A5);
  mgr.StartThread(d, &prog, 100, 0);
  kernel.SetDomainSchedule(0, {1});
  kernel.KickSchedule(0);

  // Warm-up pass over a fraction of the working set.
  while (prog.accesses() < target_accesses / 8) {
    kernel.StepCore(0);
  }
  hw::Cycles t0 = machine.core(0).now();
  std::uint64_t a0 = prog.accesses();
  while (prog.accesses() - a0 < target_accesses) {
    kernel.StepCore(0);
  }
  return static_cast<double>(machine.core(0).now() - t0);
}

void Run(RunContext& ctx) {
  std::uint64_t accesses = bench::QuickMode() ? 60'000 : 320'000;
  std::vector<std::string> kinds;
  for (workloads::SplashKind kind : workloads::AllSplashKinds()) {
    kinds.emplace_back(workloads::SplashName(kind));
  }

  runner::GridSpec grid;
  grid.platforms = {kHaswell, kSabre};
  grid.variants = kinds;
  grid.modes = {"base", "clone"};
  grid.colour_fractions = {1.0, 0.75, 0.5};
  std::vector<runner::GridCell> cells = runner::ExpandGrid(grid);

  // Every (benchmark, config) run — including the 100% baselines — is an
  // independent simulation; fan them all out at once, timing each cell.
  auto timed = ctx.engine.MapCellsTimed(grid, [&](const runner::GridCell& cell) {
    return RunOnce(PlatformConfig(cell.platform), SplashKindByName(cell.variant),
                   cell.mode == "clone", cell.colour_fraction, accesses);
  });
  std::vector<double> cycles;
  cycles.reserve(timed.size());
  for (const auto& t : timed) {
    cycles.push_back(t.value);
  }

  // Baseline (base mode, all colours) cycles per platform/benchmark.
  std::map<std::string, double> base;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].mode == "base" && cells[i].colour_fraction == 1.0) {
      base[cells[i].platform + "/" + cells[i].variant] = cycles[i];
    }
  }

  // Record every cell; collect slowdowns for the per-platform tables.
  std::map<std::string, std::map<std::string, double>> slowdowns;  // platform -> col -> geo
  std::map<std::string, std::map<std::string, std::string>> rows;  // platform/bench -> col
  auto col_name = [](const runner::GridCell& cell) {
    return Fmt("%.0f", cell.colour_fraction * 100.0) + "% " + cell.mode;
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const runner::GridCell& cell = cells[i];
    double b = base.at(cell.platform + "/" + cell.variant);
    double slowdown = cycles[i] / b - 1.0;
    bench::BenchRecord rec;
    rec.cell = cell.Name();
    rec.rounds = accesses;
    rec.wall_ns = timed[i].wall_ns;
    rec.threads = ctx.pool.threads();
    rec.metrics["cycles"] = cycles[i];
    rec.metrics["slowdown"] = slowdown;
    runner::ApplyContract(rec, timed[i].contract);
    ctx.recorder.Add(std::move(rec));
    if (cell.mode == "base" && cell.colour_fraction == 1.0) {
      continue;  // the baseline itself
    }
    std::string col = col_name(cell);
    rows[cell.platform + "/" + cell.variant][col] = Fmt("%+.2f%%", slowdown * 100.0);
    auto& geo = slowdowns[cell.platform][col];
    geo = (geo == 0.0 ? 1.0 : geo) * (slowdown + 1.0);
  }

  if (ctx.verbose) {
    const std::vector<std::string> cols = {"75% base", "50% base", "100% clone", "75% clone",
                                           "50% clone"};
    for (const std::string& platform : grid.platforms) {
      std::printf("\n--- %s ---\n", platform.c_str());
      Table t({"benchmark", cols[0], cols[1], cols[2], cols[3], cols[4]});
      for (const std::string& kind : kinds) {
        std::vector<std::string> row{kind};
        for (const std::string& col : cols) {
          row.push_back(rows[platform + "/" + kind][col]);
        }
        t.AddRow(std::move(row));
      }
      std::vector<std::string> mean_row{"GEOMEAN"};
      for (const std::string& col : cols) {
        double g = std::pow(slowdowns[platform][col],
                            1.0 / static_cast<double>(kinds.size())) -
                   1.0;
        mean_row.push_back(Fmt("%+.2f%%", g * 100.0));
      }
      t.AddRow(std::move(mean_row));
      t.Print();
    }
    std::printf(
        "\nShape checks: slowdown grows as the colour share shrinks; the\n"
        "large-working-set benchmarks (raytrace, fft, ocean) suffer most; the\n"
        "cloned-kernel columns track the base columns closely.\n");
  }
}

const RegisterChannel registrar{{
    .name = "fig7_splash_colouring",
    .title = "Figure 7: Splash-2 slowdown from colouring and cloned kernels",
    .paper = "most benchmarks <2% even at 50% colours; raytrace worst (6.5% at "
             "50% Arm, 2.5% at 75%); cloning adds ~0 on top",
    .kind = "cost",
    .contract = "all cells clean (full protection throughout)",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
