// Ablation study: remove one time-protection mechanism at a time from the
// fully protected configuration and show which channel reopens, as a
// mechanism x {ablated, protected} grid. This is the design-choice
// validation for the paper's requirement list (§3.2): every mechanism is
// load-bearing against a specific channel class.
//
//   mechanism removed          channel that reopens            paper req.
//   kernel clone               shared-kernel-image (Fig. 3)    Req. 2
//   on-core flush              L1-D prime&probe (Table 3)      Req. 1
//   switch padding             cache-flush latency (Fig. 5)    Req. 4
//   IRQ partitioning           interrupt channel (Fig. 6)      Req. 5
//   BP flush (pre-IBC x86)     BTB channel (Table 3 / §6.1)    Req. 1
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "attacks/channel_experiment.hpp"
#include "attacks/flush_channel.hpp"
#include "attacks/interrupt_channel.hpp"
#include "attacks/intra_core.hpp"
#include "attacks/kernel_channel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

const std::map<std::string, std::pair<const char*, const char*>>& Studies() {
  // variant -> (mechanism label, channel probed)
  static const std::map<std::string, std::pair<const char*, const char*>> studies = {
      {"kernel-clone", {"kernel clone (Req 2)", "kernel image (Fig 3)"}},
      {"on-core-flush", {"on-core flush (Req 1)", "L1-D prime&probe"}},
      {"switch-padding", {"switch padding (Req 4)", "flush latency (Fig 5)"}},
      {"irq-partitioning", {"IRQ partitioning (Req 5)", "interrupt (Fig 6)"}},
      {"bp-flush", {"BP flush / IBC (§6.1)", "BTB channel"}},
  };
  return studies;
}

mi::Observations CellShard(const runner::GridCell& cell, const runner::Shard& shard) {
  const bool on = cell.mode == "protected";  // mechanism present?
  if (cell.variant == "kernel-clone") {
    attacks::ExperimentOptions opt;
    opt.timeslice_ms = 0.25;
    if (!on) {
      opt.config_hook = [](kernel::KernelConfig& kc) { kc.clone_support = false; };
    }
    attacks::Experiment exp =
        attacks::MakeExperiment(hw::MachineConfig::Haswell(1), core::Scenario::kProtected, opt);
    return attacks::RunKernelChannel(exp, shard.rounds, shard.seed);
  }
  if (cell.variant == "on-core-flush") {
    std::function<void(kernel::KernelConfig&)> hook;
    if (!on) {
      hook = [](kernel::KernelConfig& kc) { kc.flush_mode = kernel::FlushMode::kNone; };
    }
    return attacks::RunIntraCoreChannel(hw::MachineConfig::Haswell(1),
                                        core::Scenario::kProtected,
                                        attacks::IntraCoreResource::kL1D, shard.rounds,
                                        shard.seed, hook);
  }
  if (cell.variant == "switch-padding") {
    attacks::ExperimentOptions opt;
    opt.timeslice_ms = 0.5;
    opt.disable_padding = !on;
    attacks::Experiment exp =
        attacks::MakeExperiment(hw::MachineConfig::Sabre(1), core::Scenario::kProtected, opt);
    return attacks::RunFlushChannel(exp, {}, shard.rounds, shard.seed);
  }
  if (cell.variant == "irq-partitioning") {
    attacks::ExperimentOptions opt;
    opt.timeslice_ms = 2.0;
    opt.sender_device_timers = {0};
    opt.config_hook = [on](kernel::KernelConfig& kc) { kc.partition_irqs = on; };
    attacks::Experiment exp =
        attacks::MakeExperiment(hw::MachineConfig::Haswell(1), core::Scenario::kProtected, opt);
    return attacks::RunInterruptChannel(exp, {}, shard.rounds, shard.seed);
  }
  if (cell.variant == "bp-flush") {
    std::function<void(kernel::KernelConfig&)> hook;
    if (!on) {
      hook = [](kernel::KernelConfig& kc) { kc.has_bp_flush = false; };
    }
    return attacks::RunIntraCoreChannel(hw::MachineConfig::Haswell(1),
                                        core::Scenario::kProtected,
                                        attacks::IntraCoreResource::kBtb, shard.rounds,
                                        shard.seed, hook);
  }
  throw std::invalid_argument("unknown ablation variant: " + cell.variant);
}

std::vector<runner::GridSpec> Grids() {
  runner::GridSpec grid;
  grid.root_seed = 0xAB1A7;
  grid.rounds = bench::Scaled(700, 128);
  grid.variants = {"kernel-clone", "on-core-flush", "switch-padding", "irq-partitioning",
                   "bp-flush"};
  grid.modes = {"ablated", "protected"};
  return {grid};
}

void Report(RunContext&, const std::vector<runner::SweepCellResult>& results) {
  Table t({"mechanism removed", "channel probed", "M ablated (mb)", "M protected (mb)",
           "verdict"});
  // Modes are the innermost axis: (ablated, protected) pairs are consecutive.
  for (std::size_t c = 0; c + 2 <= results.size(); c += 2) {
    const mi::LeakageResult& without = results[c].leakage;
    const mi::LeakageResult& with = results[c + 1].leakage;
    auto it = Studies().find(results[c].cell.variant);
    const char* mechanism = it != Studies().end() ? it->second.first : "?";
    const char* channel = it != Studies().end() ? it->second.second : "?";
    std::string verdict = without.leak && !with.leak
                              ? "mechanism is load-bearing"
                              : (without.leak ? "STILL LEAKS with mechanism"
                                              : "channel did not reopen");
    t.AddRow({mechanism, channel, Fmt("%.1f", without.MilliBits()) + (without.leak ? "*" : ""),
              Fmt("%.1f", with.MilliBits()) + (with.leak ? "*" : ""), verdict});
  }
  std::printf("\n");
  t.Print();
  std::printf("(* = definite channel: M > M0)\n");
  std::printf(
      "\nShape check: every removed mechanism reopens exactly its channel —\n"
      "time protection is a suite, not a single knob. The pre-IBC row shows\n"
      "why the paper argues for a security-aware hardware contract.\n");
}

const RegisterChannel registrar{{
    .name = "ablation_mechanisms",
    .title = "Ablation: protected configuration minus one mechanism at a time",
    .paper = "each §3.2 requirement defeats a specific channel class; removing "
             "any one of them reopens its channel",
    .kind = "channel",
    .contract = "protected cells clean; each ablated cell flags the exact structure its "
                "removed mechanism scrubs",
    .grids = Grids,
    .cell_shard = CellShard,
    .leak_options = {.shuffles = 50},
    .report = Report,
}};

}  // namespace
}  // namespace tp::scenarios
