// Registry-driven scenario execution: the tp_bench CLI, the sweep script
// and the tests all run scenarios through these entry points, so every
// registered channel behaves identically — header, grid expansion (channel
// specs) or custom body (cost specs), uniform summary, recording.
#ifndef TP_SCENARIOS_DRIVER_HPP_
#define TP_SCENARIOS_DRIVER_HPP_

#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "runner/sweep.hpp"
#include "scenarios/scenario.hpp"

namespace tp::scenarios {

// Resolves `only` names against the registry. Empty `only` selects every
// spec (name order). An unknown name sets `*error` (listing the valid
// names) and returns an empty selection.
std::vector<const ChannelSpec*> SelectSpecs(const ChannelRegistry& registry,
                                            const std::vector<std::string>& only,
                                            std::string* error);

// Per-run controls for RunSpec beyond the shared pool.
struct RunSpecOptions {
  bool verbose = true;
  // Crash isolation / resume controls, forwarded to RunChannelGrid. When
  // the skip set leaves a spec with zero cells to run, RunSpec returns
  // empty instead of treating the spec as mis-registered; when any cell
  // was skipped the spec's extra report is suppressed (report callbacks
  // expect the full grid).
  runner::SweepOptions sweep;
};

// Runs one spec end to end on the shared pool. Channel specs expand each of
// their grids through SweepEngine::RunChannelGrid, print the uniform sweep
// table, record every cell and then invoke the spec's extra report; cost
// specs run their custom body. Returns the channel-grid cell results (empty
// for cost specs). Cell failures are crash-isolated into the results'
// status fields, not thrown.
std::vector<runner::SweepCellResult> RunSpec(const ChannelSpec& spec,
                                             const runner::ExperimentRunner& pool,
                                             const RunSpecOptions& options);
std::vector<runner::SweepCellResult> RunSpec(const ChannelSpec& spec,
                                             const runner::ExperimentRunner& pool,
                                             bool verbose = true);

// One registered channel name per line, name order (script/CI-friendly).
std::string ListNames(const ChannelRegistry& registry);

// The README channel table: markdown generated from the registry.
std::string MarkdownTable(const ChannelRegistry& registry);

}  // namespace tp::scenarios

#endif  // TP_SCENARIOS_DRIVER_HPP_
