// Figure 6: the interrupt covert channel — the Trojan programs a one-shot
// timer that fires mid-way through the spy's next timeslice; the spy's
// online time before the interrupt encodes the timer value.
//
// Swept beyond the paper's point: tick {2.0, 1.0} ms (scaled stand-ins for
// the paper's 10 ms; the Trojan's timer offsets scale with the tick).
#include <cstdio>

#include "attacks/channel_experiment.hpp"
#include "attacks/interrupt_channel.hpp"
#include "mi/channel_matrix.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"

namespace tp::scenarios {
namespace {

mi::Observations CellShard(const runner::GridCell& cell, const runner::Shard& shard) {
  attacks::ExperimentOptions opt = CellOptions(cell);
  opt.sender_device_timers = {0};
  attacks::Experiment exp = attacks::MakeExperiment(PlatformConfig(cell.platform),
                                                    ScenarioByName(cell.mode), opt);
  return attacks::RunInterruptChannel(exp, {}, shard.rounds, shard.seed);
}

std::vector<runner::GridSpec> Grids() {
  runner::GridSpec grid;
  grid.root_seed = 0xF166;
  grid.rounds = bench::Scaled(700, 128);
  grid.platforms = {kHaswell};
  grid.timeslices_ms = {2.0, 1.0};
  grid.modes = {"raw", "protected"};
  return {grid};
}

void Report(RunContext&, const std::vector<runner::SweepCellResult>& results) {
  for (const runner::SweepCellResult& r : results) {
    if (r.cell.mode == "raw" && r.cell.timeslice_ms == 2.0) {
      std::printf(
          "\nmatrix at %s (spy online-time-before-interrupt vs Trojan timer symbol):\n%s",
          r.cell.Name().c_str(), mi::ChannelMatrix(r.observations, 20).ToAscii(14).c_str());
    }
  }
  std::printf(
      "\nShape check: the raw spy sees its online time split at a point that\n"
      "tracks the Trojan's timer at every tick; partitioning leaves the slice\n"
      "uninterrupted across the grid.\n");
}

const RegisterChannel registrar{{
    .name = "fig6_interrupt_channel",
    .title = "Figure 6: interrupt covert channel",
    .paper = "raw: M = 902 mb (timer 13-17ms, 10ms tick); partitioned: closed "
             "(M = 0.5 mb, M0 = 0.7 mb)",
    .kind = "channel",
    .contract = "partitioned cells clean; raw dirty (foreign interrupt residue)",
    .grids = Grids,
    .cell_shard = CellShard,
    .leak_options = {.shuffles = 50},
    .report = Report,
}};

}  // namespace
}  // namespace tp::scenarios
