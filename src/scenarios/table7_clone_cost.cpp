// Table 7: cost of kernel clone and destroy (µs) vs monolithic process
// creation (the paper compares against Linux fork+exec on the same
// hardware), per platform.
//
// Paper: x86 clone 79 µs, destroy 0.6 µs, fork+exec 257 µs; Arm clone
// 608 µs, destroy 67 µs, fork+exec 4300 µs. Shapes: clone is a fraction of
// process creation; destroy is 1-2 orders of magnitude cheaper still.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

struct CloneCosts {
  double clone_us = 0.0;
  double destroy_us = 0.0;
  double spawn_us = 0.0;
};

// One shard's worth of reps on a fresh machine; summed costs merge across
// shards by total-reps division.
CloneCosts Measure(const hw::MachineConfig& mc, std::size_t reps) {
  CloneCosts costs;
  hw::Machine machine(mc);
  kernel::KernelConfig kc;
  kc.clone_support = true;
  kc.timeslice_cycles = machine.MicrosToCycles(1e6);
  kernel::Kernel kernel(machine, kc);
  kernel::CSpace& cs = *kernel.boot_info().root_cspace;
  kernel::CapIdx untyped = kernel.boot_info().untyped;
  hw::Core& cpu = machine.core(0);

  std::size_t kmem_bytes = kc.text_bytes + kc.data_bytes + kc.stack_bytes + kc.pt_bytes +
                           machine.num_cores() * 1024 + hw::kPageSize;

  for (std::size_t i = 0; i < reps; ++i) {
    kernel::CapIdx dest = 0;
    kernel::CapIdx kmem = 0;
    if (!kernel.Retype(0, cs, untyped, kernel::ObjectType::kKernelImage, 0, &dest).ok() ||
        !kernel.Retype(0, cs, untyped, kernel::ObjectType::kKernelMemory, kmem_bytes, &kmem)
             .ok()) {
      break;
    }
    hw::Cycles t0 = cpu.now();
    kernel.KernelClone(0, cs, dest, kernel.boot_info().kernel_image, kmem);
    costs.clone_us += machine.CyclesToMicros(cpu.now() - t0);

    t0 = cpu.now();
    kernel.KernelDestroy(0, cs, dest);
    costs.destroy_us += machine.CyclesToMicros(cpu.now() - t0);
  }

  for (std::size_t i = 0; i < reps; ++i) {
    hw::Cycles t0 = cpu.now();
    kernel::CapIdx vspace = 0;
    kernel.SpawnProcessEager(0, cs, untyped, /*image_pages=*/64, /*map_pages=*/96, &vspace);
    costs.spawn_us += machine.CyclesToMicros(cpu.now() - t0);
  }

  return costs;  // summed; callers divide by total reps
}

// Shards the reps across the pool (every shard boots its own machine) and
// averages over the total.
CloneCosts MeasureSharded(const hw::MachineConfig& mc, std::size_t reps,
                          const runner::ExperimentRunner& pool, std::size_t* shards_out,
                          hw::ContractTally* contract_out) {
  runner::ShardPlan plan =
      runner::PlanShards(reps, /*root_seed=*/0, /*min_shard_rounds=*/2);
  if (shards_out != nullptr) {
    *shards_out = plan.num_shards();
  }
  struct ShardOut {
    CloneCosts costs;
    hw::ContractTally contract;
  };
  std::vector<ShardOut> parts = pool.Map(plan.num_shards(), [&](std::size_t i) {
    ShardOut out;
    hw::ContractCapture capture;
    out.costs = Measure(mc, plan.shard_rounds[i]);
    out.contract = capture.Take();
    return out;
  });
  CloneCosts total;
  for (const ShardOut& shard : parts) {
    const CloneCosts& part = shard.costs;
    total.clone_us += part.clone_us;
    total.destroy_us += part.destroy_us;
    total.spawn_us += part.spawn_us;
    if (contract_out != nullptr) {
      contract_out->Merge(shard.contract);
    }
  }
  total.clone_us /= static_cast<double>(reps);
  total.destroy_us /= static_cast<double>(reps);
  total.spawn_us /= static_cast<double>(reps);
  return total;
}

void Run(RunContext& ctx) {
  std::size_t reps = bench::Scaled(24, 6);
  const std::map<std::string, const char*> paper = {
      {kHaswell, "79 / 0.6 / 257"},
      {kSabre, "608 / 67 / 4300"},
  };
  Table t({"platform", "clone", "destroy", "process-create",
           "paper clone/destroy/fork+exec"});
  // Platforms run one after the other: each platform's reps shard across
  // the whole pool already.
  for (const std::string& platform : {std::string(kHaswell), std::string(kSabre)}) {
    std::uint64_t t0 = bench::Recorder::NowNs();
    std::size_t shards = 1;
    hw::ContractTally contract;
    CloneCosts c =
        MeasureSharded(PlatformConfig(platform, 4), reps, ctx.pool, &shards, &contract);
    auto it = paper.find(platform);
    t.AddRow({platform, Fmt("%.1f", c.clone_us), Fmt("%.2f", c.destroy_us),
              Fmt("%.1f", c.spawn_us), it != paper.end() ? it->second : "-"});
    bench::BenchRecord rec{.cell = platform,
                           .rounds = reps,
                           .wall_ns = bench::Recorder::NowNs() - t0,
                           .threads = ctx.pool.threads(),
                           .shards = shards,
                           .metrics = {{"clone_us", c.clone_us},
                                       {"destroy_us", c.destroy_us},
                                       {"spawn_us", c.spawn_us}}};
    runner::ApplyContract(rec, contract);
    ctx.recorder.Add(std::move(rec));
  }
  if (ctx.verbose) {
    std::printf("\n");
    t.Print();
    std::printf(
        "\nShape checks: clone << process creation; destroy << clone.\n"
        "(The process-creation comparator performs the eager map + image copy +\n"
        "zeroing work of fork+exec on the same simulated hardware.)\n");
  }
}

const RegisterChannel registrar{{
    .name = "table7_clone_cost",
    .title = "Table 7: kernel clone/destroy vs monolithic process creation (us)",
    .paper = "x86: clone 79, destroy 0.6, fork+exec 257. Arm: clone 608, "
             "destroy 67, fork+exec 4300",
    .kind = "cost",
    .contract = "all cells clean",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
