// Figure 4: cross-core LLC side-channel attack (Liu et al. 2015) against a
// square-and-multiply ElGamal decryption, spy and victim on separate cores,
// as a platform x {raw, protected} grid.
//
// Paper: the unmitigated spy sees the victim's square-function invocations
// as dots on the monitored cache set, with the secret key encoded in the
// intervals; with time protection (coloured LLC) the spy can no longer
// detect any cache activity of the victim. The protected cell's
// `activity_fraction` metric is leak-gated by tp_bench_diff.
#include <cstdio>

#include "attacks/llc_side_channel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"

namespace tp::scenarios {
namespace {

void Run(RunContext& ctx) {
  std::size_t slots = bench::Scaled(1200, 256);
  constexpr std::uint64_t kSecret = 0xB1A5ED5EEDull;

  runner::GridSpec grid;
  grid.platforms = {kHaswell};
  grid.modes = {"raw", "protected"};
  std::vector<runner::GridCell> cells = runner::ExpandGrid(grid);

  // The spy trace is one continuous time series per scenario, so the
  // fan-out unit is the grid cell, not the slot.
  auto results = ctx.engine.MapCellsTimed(grid, [&](const runner::GridCell& cell) {
    return attacks::RunLlcSideChannel(PlatformConfig(cell.platform, 2),
                                      ScenarioByName(cell.mode), kSecret, slots);
  });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const attacks::SideChannelResult& r = results[i].value;
    if (ctx.verbose) {
      std::printf(
          "\n%s: activity in %zu/%zu slots (%.1f%%), %zu dot events, victim "
          "completed %zu decryptions\n",
          cells[i].Name().c_str(), r.activity_slots, r.trace.size(),
          r.activity_fraction * 100.0, r.activity_events, r.victim_decryptions);
      std::printf("%s", r.AsciiTrace(100).c_str());
    }
    bench::BenchRecord rec{
        .cell = cells[i].Name(),
        .rounds = slots,
        .samples = r.trace.size(),
        .wall_ns = results[i].wall_ns,
        .threads = ctx.pool.threads(),
        .metrics = {{"activity_slots", static_cast<double>(r.activity_slots)},
                    {"activity_events", static_cast<double>(r.activity_events)},
                    {"activity_fraction", r.activity_fraction}}};
    runner::ApplyContract(rec, results[i].contract);
    ctx.recorder.Add(std::move(rec));
  }
  if (ctx.verbose) {
    std::printf(
        "\nShape check: the raw spy recovers the square-invocation pattern (dots\n"
        "with bit-dependent spacing); colouring leaves the spy blind.\n");
  }
}

const RegisterChannel registrar{{
    .name = "fig4_llc_side_channel",
    .title = "Figure 4: cross-core LLC side channel on modular exponentiation",
    .paper = "raw: square-pattern dots at the victim's set; protected: no "
             "activity detectable",
    .kind = "cost",
    .contract = "all cells clean (cross-core: no shared on-core state)",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
