// Shared result-summary helpers for scenarios: aligned tables, the uniform
// per-cell sweep summary and the per-symbol mean scatter table that the
// bench drivers used to hand-roll one copy each of.
#ifndef TP_SCENARIOS_SUMMARY_HPP_
#define TP_SCENARIOS_SUMMARY_HPP_

#include <functional>
#include <string>
#include <vector>

#include "mi/observations.hpp"
#include "runner/sweep.hpp"

namespace tp::scenarios {

void Header(const std::string& experiment, const std::string& paper_summary);

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(const char* fmt, double v);

// The uniform channel-sweep results table: one row per grid cell with M,
// M0, sample count and the shuffle-test verdict.
void PrintSweepResults(const std::vector<runner::SweepCellResult>& results);

// Per-symbol mean summary (the fig5-style scatter table): groups paired
// observations by input symbol and prints the mean output per symbol.
// `symbol_label` and `value_format` translate raw symbol/mean into display
// units (dirty sets, microseconds, ...); identity defaults when null.
void PrintPerSymbolMeans(const mi::Observations& obs, const std::string& symbol_header,
                         const std::string& value_header,
                         const std::function<std::string(int)>& symbol_label = nullptr,
                         const std::function<std::string(double)>& value_format = nullptr);

}  // namespace tp::scenarios

#endif  // TP_SCENARIOS_SUMMARY_HPP_
