// Table 2: worst-case cost of cache flushes (µs), direct and indirect, as a
// platform x {L1, full} grid.
//
// Direct cost: the flush operations with every L1-D line dirty (the paper's
// worst case). The x86 L1 figure is the "manual" flush of §4.3 (loads +
// serialised jump chain) — the paper notes a hardware-assisted flush would
// cost ~1 µs. Indirect cost: the one-off slowdown of an application whose
// working set matches the flushed cache, measured as extra cycles on its
// first sweep after the flush.
#include <cstdio>
#include <map>
#include <string>

#include "core/domain.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

// Sweeps a buffer once per Step; returns cycles of the last sweep.
class SweepProgram final : public kernel::UserProgram {
 public:
  SweepProgram(const core::MappedBuffer& buffer, std::size_t line)
      : buf_(buffer), line_(line) {}
  void Step(kernel::UserApi& api) override {
    hw::Cycles t0 = api.Now();
    for (std::size_t off = 0; off < buf_.bytes; off += line_) {
      api.Write(buf_.base + off);
    }
    last_sweep_ = api.Now() - t0;
    ++sweeps_;
  }
  hw::Cycles last_sweep() const { return last_sweep_; }
  std::uint64_t sweeps() const { return sweeps_; }

 private:
  core::MappedBuffer buf_;
  std::size_t line_;
  hw::Cycles last_sweep_ = 0;
  std::uint64_t sweeps_ = 0;
};

struct CostCell {
  double direct_us = 0.0;
  double indirect_us = 0.0;
};

CostCell MeasureCell(const hw::MachineConfig& mc, bool full) {
  hw::Machine machine(mc);
  kernel::KernelConfig kc;
  kc.timeslice_cycles = machine.MicrosToCycles(1e6);  // no preemption
  kernel::Kernel kernel(machine, kc);
  core::DomainManager mgr(kernel);
  core::Domain& d = mgr.CreateDomain({.id = 1});
  std::size_t ws = full ? mc.llc.size_bytes : mc.l1d.size_bytes;
  core::MappedBuffer buf = mgr.AllocBuffer(d, ws);
  SweepProgram prog(buf, mc.l1d.line_size);
  mgr.StartThread(d, &prog, 100, 0);
  kernel.SetDomainSchedule(0, {1});
  kernel.KickSchedule(0);

  // Warm up: several sweeps so the working set is cache-resident and the
  // L1 is fully dirty (writes).
  while (prog.sweeps() < 4) {
    kernel.StepCore(0);
  }
  hw::Cycles steady = prog.last_sweep();

  hw::Cycles direct = full ? kernel.MeasureFullFlush(0) : kernel.MeasureOnCoreFlush(0);

  // One sweep right after the flush: the indirect (refill) cost.
  std::uint64_t n = prog.sweeps();
  while (prog.sweeps() == n) {
    kernel.StepCore(0);
  }
  hw::Cycles cold = prog.last_sweep();
  CostCell cell;
  cell.indirect_us = machine.CyclesToMicros(cold > steady ? cold - steady : 0);
  cell.direct_us = machine.CyclesToMicros(direct);
  return cell;
}

void Run(RunContext& ctx) {
  const std::map<std::string, const char*> paper = {
      {std::string(kHaswell) + "/L1", "26 / 1 / 27"},
      {std::string(kHaswell) + "/full", "270 / 250 / 520"},
      {std::string(kSabre) + "/L1", "20 / 25 / 45"},
      {std::string(kSabre) + "/full", "380 / 770 / 1150"},
  };
  runner::GridSpec grid;
  grid.platforms = {kHaswell, kSabre};
  grid.variants = {"L1", "full"};
  std::vector<runner::GridCell> cells = runner::ExpandGrid(grid);

  auto costs = ctx.engine.MapCellsTimed(grid, [&](const runner::GridCell& cell) {
    return MeasureCell(PlatformConfig(cell.platform), cell.variant == "full");
  });

  Table t({"platform", "cache", "direct", "indirect", "total", "paper(d/i/t)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto it = paper.find(cells[i].platform + "/" + cells[i].variant);
    const CostCell& cost = costs[i].value;
    t.AddRow({cells[i].platform, cells[i].variant == "full" ? "Full flush" : "L1 only",
              Fmt("%.1f", cost.direct_us), Fmt("%.1f", cost.indirect_us),
              Fmt("%.1f", cost.direct_us + cost.indirect_us),
              it != paper.end() ? it->second : "-"});
    bench::BenchRecord rec{.cell = cells[i].Name(),
                           .wall_ns = costs[i].wall_ns,
                           .threads = ctx.pool.threads(),
                           .metrics = {{"direct_us", cost.direct_us},
                                       {"indirect_us", cost.indirect_us}}};
    runner::ApplyContract(rec, costs[i].contract);
    ctx.recorder.Add(std::move(rec));
  }
  if (ctx.verbose) {
    std::printf("\n");
    t.Print();
    std::printf(
        "\nShape checks: full >> L1 on both platforms; x86 manual L1 flush is\n"
        "dominated by the serialised jump chain (would be ~1 us with hardware "
        "support).\n");
  }
}

const RegisterChannel registrar{{
    .name = "table2_flush_cost",
    .title = "Table 2: worst-case cost of cache flushes (us)",
    .paper = "x86 L1 dir 26 ind 1 tot 27; full 270/250/520. Arm L1 20/25/45; "
             "full 380/770/1150. (x86 L1 is the manual flush; ~1us with "
             "hardware support)",
    .kind = "cost",
    .contract = "all cells clean",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
