// Table 6: absolute domain-switch cost (µs, no padding) when switching away
// from a domain running various prime&probe receivers, under raw / full
// flush / time protection, as a platform x receiver x mode grid.
//
// Paper: x86 raw 0.18-0.5 µs (workload-dependent), full flush 271 µs flat,
// protected 30 µs flat; Arm raw 0.7-1.6 µs, full 414 µs, protected
// 27-31 µs. Key shapes: the defended systems' latency no longer depends on
// the workload, and time protection is an order of magnitude cheaper than
// the full flush.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attacks/channel_experiment.hpp"
#include "attacks/prime_probe.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

// A receiver that probes its eviction set every step (keeps the
// microarchitectural state hot/dirty, maximising switch work).
class BusyProbe final : public kernel::UserProgram {
 public:
  BusyProbe(attacks::EvictionSet es, bool instruction)
      : es_(std::move(es)), instr_(instruction) {}
  void Step(kernel::UserApi& api) override {
    if (es_.lines().empty()) {
      api.Compute(200);
      return;
    }
    if (instr_) {
      api.FetchBatch(es_.lines());
    } else {
      api.WriteBatch(es_.lines());  // dirty lines: worst case for the flush
    }
  }

 private:
  attacks::EvictionSet es_;
  bool instr_;
};

double MeasureSwitch(const hw::MachineConfig& mc, core::Scenario scenario,
                     const std::string& receiver, std::size_t switches) {
  attacks::ExperimentOptions opt;
  opt.timeslice_ms = 0.25;
  opt.disable_padding = true;  // Table 6 reports unpadded latency
  attacks::Experiment exp = attacks::MakeExperiment(mc, scenario, opt);

  std::unique_ptr<BusyProbe> prog;
  const hw::CacheGeometry* target = nullptr;
  bool instr = false;
  if (receiver == "L1-D") {
    target = &mc.l1d;
  } else if (receiver == "L1-I") {
    target = &mc.l1i;
    instr = true;
  } else if (receiver == "L2") {
    target = mc.has_private_l2 ? &mc.l2 : &mc.llc;
  } else if (receiver == "L3") {
    target = &mc.llc;
  }
  if (target != nullptr) {
    // Probe a working set matching the target cache (capped so one probe
    // fits comfortably inside a timeslice).
    std::size_t bytes = std::min<std::size_t>(target->size_bytes, 512 * 1024);
    core::MappedBuffer buf = exp.manager->AllocBuffer(*exp.sender_domain, bytes);
    std::set<std::size_t> sets;
    hw::SetAssociativeCache model("m", *target,
                                  target == &mc.l1d || target == &mc.l1i
                                      ? hw::Indexing::kVirtual
                                      : hw::Indexing::kPhysical);
    for (std::size_t s = 0; s < model.geometry().SetsPerSlice(); ++s) {
      sets.insert(s);
    }
    attacks::EvictionSet es = attacks::EvictionSet::Build(
        model, buf, sets, target->associativity, target == &mc.l1d || target == &mc.l1i);
    prog = std::make_unique<BusyProbe>(std::move(es), instr);
    exp.manager->StartThread(*exp.sender_domain, prog.get(), 120, 0);
  }
  // Receiver domain 2 stays idle: we measure switching *away* from the
  // attack workload into an idle domain.

  kernel::Kernel& k = *exp.kernel;
  hw::Cycles slice = exp.machine->MicrosToCycles(250.0);
  double total_us = 0.0;
  std::size_t n = 0;
  std::uint64_t last_seen = k.domain_switches();
  for (std::size_t guard = 0; guard < switches * 64 && n < switches; ++guard) {
    k.RunFor(slice / 4);
    if (k.domain_switches() != last_seen) {
      last_seen = k.domain_switches();
      // Sample only switches landing in the idle domain (away from sender).
      if (k.current_domain(0) == 2) {
        total_us += exp.machine->CyclesToMicros(k.last_switch_cost(0));
        ++n;
      }
    }
  }
  return n > 0 ? total_us / static_cast<double>(n) : 0.0;
}

void Run(RunContext& ctx) {
  std::size_t switches = bench::Scaled(200, 48);
  const std::vector<std::string> receivers = {"Idle", "L1-D", "L1-I", "L2", "L3"};
  const std::vector<std::string> modes = {"raw", "full flush", "protected"};
  const std::map<std::string, const char*> paper = {
      {kHaswell, "raw 0.18..0.5 / full 271 / protected 30"},
      {kSabre, "raw 0.7..1.6 / full 414 / protected 27..31"},
  };

  // Per-platform grids: the Sabre has no L3 receiver.
  runner::GridSpec x86;
  x86.platforms = {kHaswell};
  x86.variants = receivers;
  x86.modes = modes;
  runner::GridSpec arm = x86;
  arm.platforms = {kSabre};
  arm.variants = {"Idle", "L1-D", "L1-I", "L2"};

  for (const runner::GridSpec& grid : {x86, arm}) {
    std::vector<runner::GridCell> cells = runner::ExpandGrid(grid);
    auto costs = ctx.engine.MapCellsTimed(grid, [&](const runner::GridCell& cell) {
      return MeasureSwitch(PlatformConfig(cell.platform), ScenarioByName(cell.mode),
                           cell.variant, switches);
    });

    std::map<std::string, double> by_key;  // variant|mode -> us
    for (std::size_t i = 0; i < cells.size(); ++i) {
      by_key[cells[i].variant + "|" + cells[i].mode] = costs[i].value;
      bench::BenchRecord rec{.cell = cells[i].Name(),
                             .rounds = switches,
                             .wall_ns = costs[i].wall_ns,
                             .threads = ctx.pool.threads(),
                             .metrics = {{"switch_us", costs[i].value}}};
      runner::ApplyContract(rec, costs[i].contract);
      ctx.recorder.Add(std::move(rec));
    }
    if (ctx.verbose) {
      const std::string& platform = grid.platforms.front();
      auto it = paper.find(platform);
      std::printf("\n--- %s (paper: %s) ---\n", platform.c_str(),
                  it != paper.end() ? it->second : "-");
      Table t({"mode", receivers[0], receivers[1], receivers[2], receivers[3], receivers[4]});
      for (const std::string& mode : modes) {
        std::vector<std::string> row{mode};
        for (const std::string& receiver : receivers) {
          auto cost = by_key.find(receiver + "|" + mode);
          row.push_back(cost != by_key.end() ? Fmt("%.2f", cost->second) : "N/A");
        }
        t.AddRow(std::move(row));
      }
      t.Print();
    }
  }
  if (ctx.verbose) {
    std::printf(
        "\nShape checks: raw cost is small and workload-dependent; defended\n"
        "costs are workload-independent; protected << full flush.\n");
  }
}

const RegisterChannel registrar{{
    .name = "table6_switch_cost",
    .title = "Table 6: domain-switch cost (us), no padding, by receiver workload",
    .paper = "x86: raw 0.18-0.5, full 271, protected 30. Arm: raw 0.7-1.6, "
             "full 414, protected 27-31",
    .kind = "cost",
    .contract = "full-flush and protected cells clean; raw dirty above trivial working sets",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
