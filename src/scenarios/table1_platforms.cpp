// Table 1: the evaluation platforms. Prints the simulated machine
// configurations and the derived colouring geometry so every other
// scenario's context is reproducible from this output.
#include <cstdio>

#include "core/colour.hpp"
#include "hw/machine.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

void PrintPlatform(RunContext& ctx, const std::string& platform) {
  hw::MachineConfig mc = PlatformConfig(platform, /*cores=*/4);
  std::uint64_t t0 = bench::Recorder::NowNs();
  if (ctx.verbose) {
    std::printf("\n%s\n", mc.name.c_str());
    Table t({"property", "value"});
    t.AddRow({"clock", Fmt("%.1f GHz", mc.clock_ghz)});
    t.AddRow({"cores", std::to_string(mc.num_cores)});
    t.AddRow({"cache line", std::to_string(mc.llc.line_size) + " B"});
    auto cache_row = [&](const char* name, const hw::CacheGeometry& g) {
      t.AddRow({name, std::to_string(g.size_bytes / 1024) + " KiB, " +
                          std::to_string(g.associativity) + "-way, " +
                          std::to_string(g.SetsPerSlice()) + " sets" +
                          (g.num_slices > 1
                               ? " x " + std::to_string(g.num_slices) + " slices"
                               : "") +
                          ", " + std::to_string(g.Colours()) + " colour(s)"});
    };
    cache_row("L1-I", mc.l1i);
    cache_row("L1-D", mc.l1d);
    if (mc.has_private_l2) {
      cache_row("L2 (private)", mc.l2);
    }
    cache_row(mc.has_private_l2 ? "L3 (shared LLC)" : "L2 (shared LLC)", mc.llc);
    auto tlb_row = [&](const char* name, const hw::TlbGeometry& g) {
      t.AddRow({name, std::to_string(g.entries) + " entries, " +
                          std::to_string(g.associativity) + "-way"});
    };
    tlb_row("I-TLB", mc.itlb);
    tlb_row("D-TLB", mc.dtlb);
    tlb_row("L2-TLB", mc.l2tlb);
    t.AddRow({"RAM", std::to_string(mc.ram_bytes >> 30) + " GiB"});
    t.AddRow({"colouring cache",
              std::string(core::ColouringCache(mc).size_bytes / 1024 >= 1024 ? "shared LLC"
                                                                             : "private L2") +
                  " -> " + std::to_string(core::NumColours(mc)) + " colours"});
    t.AddRow({"L1 flush", mc.has_architected_l1_flush ? "architected (DCCISW/ICIALLU)"
                                                      : "manual (loads + jump chain)"});
    t.Print();
  }
  bench::BenchRecord rec{
      .cell = platform,
      .wall_ns = bench::Recorder::NowNs() - t0,
      .metrics = {{"num_colours", static_cast<double>(core::NumColours(mc))},
                  {"llc_colours", static_cast<double>(mc.llc.Colours())},
                  {"cores", static_cast<double>(mc.num_cores)}}};
  // No domain ever switches here; the contract is vacuously clean, recorded
  // so taint-on runs carry the observable for every cell.
  runner::ApplyContract(rec, hw::ContractTally{});
  ctx.recorder.Add(std::move(rec));
}

void Run(RunContext& ctx) {
  PrintPlatform(ctx, kHaswell);
  PrintPlatform(ctx, kSabre);
}

const RegisterChannel registrar{{
    .name = "table1_platforms",
    .title = "Table 1: hardware platforms (simulated)",
    .paper = "Haswell Core i7-4770 4x2 @3.4GHz; Sabre i.MX6Q Cortex A9 4x1 @0.8GHz",
    .kind = "cost",
    .contract = "all cells clean",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
