// Table 5: cross-address-space IPC microbenchmark under the four kernel
// versions — original, colour-ready (clone-capable but unused), intra-colour
// (cloned kernel, IPC within the domain) and inter-colour (IPC across
// kernels, no padding: an artificial case, as the paper notes) — as a
// platform x version grid.
//
// Paper: x86 381 cycles original, within ±1% for all versions; Arm 344
// cycles original but 13-15% slower for all clone-capable versions, because
// non-global kernel mappings double kernel TLB pressure and the Cortex A9's
// L2 TLB is only 2-way associative.
#include <cstdio>
#include <map>
#include <optional>
#include <string>

#include "core/domain.hpp"
#include "core/time_protection.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

struct PingClient final : kernel::UserProgram {
  kernel::CapIdx ep = 0;
  int state = 0;
  std::uint64_t rounds = 0;
  hw::Cycles t0 = 0;
  hw::Cycles total_cycles = 0;
  std::uint64_t measured = 0;

  void Step(kernel::UserApi& api) override {
    if (state == 0) {
      t0 = api.Now();
      api.Call(ep, rounds);
      state = 1;
    } else {
      hw::Cycles rt = api.Now() - t0;
      // Skip warm-up rounds.
      if (rounds > 64) {
        total_cycles += rt;
        ++measured;
      }
      ++rounds;
      state = 0;
    }
  }
};

struct PongServer final : kernel::UserProgram {
  kernel::CapIdx ep = 0;
  bool first = true;
  void Step(kernel::UserApi& api) override {
    if (first) {
      api.Recv(ep);
      first = false;
    } else {
      api.ReplyRecv(ep, 1);
    }
  }
};

// One-way IPC cost in cycles (round trip / 2) for a version-axis value.
double MeasureIpc(const hw::MachineConfig& mc, const std::string& version,
                  std::size_t rounds) {
  hw::Machine machine(mc);
  kernel::KernelConfig kc;
  kc.clone_support = version != "original";
  kc.timeslice_cycles = machine.MicrosToCycles(1e6);  // no preemption
  kernel::Kernel kernel(machine, kc);
  core::DomainManager mgr(kernel);

  PingClient client;
  PongServer server;

  if (version == "inter-colour") {
    // The artificial inter-colour case (paper §5.4.1): the IPC partners use
    // *different cloned kernels* in differently coloured memory, and the
    // kernel image switches on the IPC path with no time slice or padding.
    // Both threads share one schedulable domain so the ping-pong runs
    // back-to-back; what crosses the colour boundary is the kernel.
    auto colours = core::SplitColours(mc, 2);
    core::Domain& d1 = mgr.CreateDomain({.id = 1, .colours = colours[0]});
    core::Domain& d2 = mgr.CreateDomain({.id = 2, .colours = colours[1]});
    kernel::CapIdx ep_mgr = mgr.CreateEndpoint(d1);
    client.ep = mgr.GrantCap(d1, ep_mgr);
    server.ep = d1.cspace->Insert(mgr.cspace().At(ep_mgr));
    mgr.StartThread(d1, &client, 100, 0);

    // Server thread: d2's kernel image and vspace, scheduled in domain 1.
    std::optional<kernel::CapIdx> frame = mgr.pool().TakeFrame(colours[1]);
    kernel::CapIdx tcb = 0;
    kernel.RetypeInFrame(0, mgr.cspace(), *frame, kernel::ObjectType::kTcb, &tcb);
    kernel::TcbSettings settings;
    settings.vspace = d2.vspace;
    settings.priority = 150;
    settings.domain = 1;
    settings.kernel_image = d2.kernel_image;
    settings.affinity = 0;
    settings.program = &server;
    settings.cspace = d1.cspace;
    kernel.ConfigureTcb(0, mgr.cspace(), tcb, settings);
    kernel.ResumeTcb(0, mgr.cspace(), tcb);
    kernel.SetDomainSchedule(0, {1});
    kernel.KickSchedule(0);
  } else {
    core::DomainOptions opts;
    opts.id = 1;
    if (version == "intra-colour") {
      opts.colours = core::SplitColours(mc, 2)[0];
    }
    core::Domain& d = mgr.CreateDomain(opts);
    kernel::CapIdx ep_mgr = mgr.CreateEndpoint(d);
    client.ep = mgr.GrantCap(d, ep_mgr);
    server.ep = client.ep;
    // Cross-address-space IPC (the paper's benchmark): client and server
    // are separate processes with their own vspaces/ASIDs.
    kernel::CapIdx server_vspace = mgr.CreateVSpace(d);
    mgr.StartThread(d, &server, 150, 0, server_vspace);
    mgr.StartThread(d, &client, 100, 0);
    kernel.SetDomainSchedule(0, {1});
    kernel.KickSchedule(0);
  }

  while (client.measured < rounds) {
    kernel.StepCore(0);
  }
  double round_trip =
      static_cast<double>(client.total_cycles) / static_cast<double>(client.measured);
  return round_trip / 2.0;
}

void Run(RunContext& ctx) {
  std::size_t rounds = bench::Scaled(4000, 512);
  const std::map<std::string, const char*> paper = {
      {kHaswell, "381 cyc; colour-ready +1%, intra 0%, inter -1%"},
      {kSabre, "344 cyc; colour-ready +14%, intra +15%, inter +13%"},
  };

  runner::GridSpec grid;
  grid.platforms = {kHaswell, kSabre};
  grid.variants = {"original", "colour-ready", "intra-colour", "inter-colour"};
  std::vector<runner::GridCell> cells = runner::ExpandGrid(grid);

  auto timed = ctx.engine.MapCellsTimed(grid, [&](const runner::GridCell& cell) {
    return MeasureIpc(PlatformConfig(cell.platform), cell.variant, rounds);
  });
  std::vector<double> cycles;
  cycles.reserve(timed.size());
  for (const auto& t : timed) {
    cycles.push_back(t.value);
  }

  // Versions are the inner axis: each platform's four cells are
  // consecutive, "original" first.
  for (std::size_t p = 0; p < cells.size(); p += grid.variants.size()) {
    const std::string& platform = cells[p].platform;
    if (ctx.verbose) {
      auto it = paper.find(platform);
      std::printf("\n--- %s (paper: %s) ---\n", platform.c_str(),
                  it != paper.end() ? it->second : "-");
    }
    Table t({"version", "cycles", "slowdown"});
    double base = cycles[p];
    for (std::size_t i = p; i < p + grid.variants.size(); ++i) {
      double slowdown = (cycles[i] / base - 1.0) * 100.0;
      t.AddRow({cells[i].variant, Fmt("%.0f", cycles[i]), Fmt("%+.1f%%", slowdown)});
      bench::BenchRecord rec{
          .cell = cells[i].Name(),
          .rounds = rounds,
          .wall_ns = timed[i].wall_ns,
          .threads = ctx.pool.threads(),
          .metrics = {{"ipc_cycles", cycles[i]}, {"slowdown_pct", slowdown}}};
      runner::ApplyContract(rec, timed[i].contract);
      ctx.recorder.Add(std::move(rec));
    }
    if (ctx.verbose) {
      t.Print();
    }
  }
  if (ctx.verbose) {
    std::printf(
        "\nShape check: clone support is (nearly) free on x86; on Arm the\n"
        "non-global kernel mappings cost >10%% through L2-TLB conflict misses.\n");
  }
}

const RegisterChannel registrar{{
    .name = "table5_ipc",
    .title = "Table 5: IPC microbenchmark performance and slowdown",
    .paper = "x86: 381 cycles, ~0-1% slowdown for all versions. Arm: 344 cycles, "
             "13-15% for clone-capable versions (2-way L2 TLB conflicts)",
    .kind = "cost",
    .contract = "all cells clean",
    .run = Run,
}};

}  // namespace
}  // namespace tp::scenarios
