// Table 4: the cache-flush channel (mb) with and without switch padding,
// for both online- and offline-time observables on both platforms, as a
// platform x observable x mode grid.
//
// Paper: x86 8.4/8.3 mb unpadded -> closed (0.5/0.6) with a 58.8 µs pad;
// Arm 1400/1400 mb unpadded -> closed with a 62.5 µs pad. The x86 channel
// is small because the manual flush's write-back variation is buried in the
// jump-chain cost; the Arm DCCISW flush exposes it directly.
#include <cstdio>

#include "attacks/channel_experiment.hpp"
#include "attacks/flush_channel.hpp"
#include "core/padding.hpp"
#include "runner/quick.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_util.hpp"
#include "scenarios/summary.hpp"

namespace tp::scenarios {
namespace {

mi::Observations CellShard(const runner::GridCell& cell, const runner::Shard& shard) {
  hw::MachineConfig mc = PlatformConfig(cell.platform);
  attacks::ExperimentOptions opt;
  opt.timeslice_ms = mc.arch == hw::Arch::kX86 ? 0.25 : 0.5;
  opt.disable_padding = cell.mode == "nopad";
  attacks::Experiment exp = attacks::MakeExperiment(mc, core::Scenario::kProtected, opt);
  attacks::FlushChannelParams params;
  params.observable = cell.variant == "Online" ? attacks::TimingObservable::kOnline
                                               : attacks::TimingObservable::kOffline;
  return attacks::RunFlushChannel(exp, params, shard.rounds, shard.seed);
}

std::vector<runner::GridSpec> Grids() {
  runner::GridSpec grid;
  grid.root_seed = 0x7AB4E;
  grid.rounds = bench::Scaled(900);
  grid.platforms = {kHaswell, kSabre};
  grid.variants = {"Online", "Offline"};
  grid.modes = {"nopad", "protected"};
  return {grid};
}

void Report(RunContext&, const std::vector<runner::SweepCellResult>& results) {
  Table t({"platform", "timing", "no pad M (mb)", "protected M (M0) (mb)", "verdict",
           "pad (us)"});
  // Modes are the innermost axis: each observable's nopad / protected cells
  // are consecutive.
  for (std::size_t c = 0; c + 2 <= results.size(); c += 2) {
    const runner::GridCell& cell = results[c].cell;
    const mi::LeakageResult& nopad = results[c].leakage;
    const mi::LeakageResult& padded = results[c + 1].leakage;
    hw::Machine probe(PlatformConfig(cell.platform));
    double pad_us = probe.CyclesToMicros(
        core::WorstCaseSwitchCycles(probe, kernel::FlushMode::kOnCore));
    std::string verdict = nopad.leak && !padded.leak ? "closed by padding"
                          : (!nopad.leak ? "no unpadded channel" : "STILL LEAKS");
    t.AddRow({cell.platform, cell.variant,
              Fmt("%.1f", nopad.MilliBits()) + (nopad.leak ? "*" : ""),
              Fmt("%.1f", padded.MilliBits()) + " (" + Fmt("%.1f", padded.M0MilliBits()) +
                  ")" + (padded.leak ? "*" : ""),
              verdict, Fmt("%.1f", pad_us)});
  }
  std::printf("\n");
  t.Print();
  std::printf(
      "\nShape check: the Arm channel is orders of magnitude larger than the\n"
      "x86 one (architected flush exposes dirty-line write-back directly);\n"
      "padding to the worst case closes both.\n");
}

const RegisterChannel registrar{{
    .name = "table4_flush_channel",
    .title = "Table 4: cache-flush channel (mb) without and with time padding",
    .paper = "x86: 8.4/8.3mb -> 0.5/0.6mb (pad 58.8us); Arm: 1400/1400mb -> "
             "closed (pad 62.5us)",
    .kind = "channel",
    .contract = "all cells clean (pure timing channel, no residue)",
    .grids = Grids,
    .cell_shard = CellShard,
    .leak_options = {.shuffles = 50},
    .report = Report,
}};

}  // namespace
}  // namespace tp::scenarios
