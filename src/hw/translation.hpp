// Interface the memory system uses to translate virtual addresses and to
// find the physical locations of page-table entries for walk costing.
// Implemented by the kernel's AddressSpace; the hardware layer only sees
// this abstract view.
#ifndef TP_HW_TRANSLATION_HPP_
#define TP_HW_TRANSLATION_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/types.hpp"

namespace tp::hw {

struct Translation {
  PAddr paddr = 0;
  bool global = false;  // TLB entry survives non-global flushes
};

// Shared change counter for contexts whose translation function is fixed
// after construction (see TranslationContext::generation).
inline constexpr std::uint64_t kStaticTranslationGeneration = 0;

class TranslationContext {
 public:
  virtual ~TranslationContext() = default;

  // Translation for the page containing `vaddr`, or nullopt on fault.
  virtual std::optional<Translation> Translate(VAddr vaddr) const = 0;

  // Monotonic change counter covering Translate()'s results: the core
  // caches page translations keyed on (context, page, *generation()), so an
  // implementation whose mappings can change after construction must bump
  // its counter on every map/unmap. Immutable contexts keep the default.
  virtual const std::uint64_t* generation() const { return &kStaticTranslationGeneration; }

  // Physical addresses of the page-table entries a hardware walker reads to
  // translate `vaddr` (outermost first). These reads go through the data
  // cache hierarchy, so page tables have cache footprints — the basis of
  // page-table side channels, which colouring kernel memory defeats.
  virtual void WalkPath(VAddr vaddr, std::vector<PAddr>& out) const = 0;

  virtual Asid asid() const = 0;
};

}  // namespace tp::hw

#endif  // TP_HW_TRANSLATION_HPP_
