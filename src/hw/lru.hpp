// Shared exact-LRU age machinery for the SoA cache and TLB models.
//
// Each set keeps one byte of age rank per way (0 = MRU .. ways-1 = LRU),
// padded to an 8-byte stride so promotion and victim search run as SWAR
// word operations instead of per-byte loops. Ages form a permutation of
// 0..ways-1 per set; padding bytes hold 0xFF, which no comparison against a
// real rank (< 64) can match or increment. The update rule — every way
// younger than the touched one ages by a step, the touched way becomes MRU
// — reproduces the relative order of a global LRU clock exactly, so victim
// choice is bit-identical to the previous array-of-structs model.
#ifndef TP_HW_LRU_HPP_
#define TP_HW_LRU_HPP_

#include <bit>
#include <cstdint>
#include <cstring>

namespace tp::hw {

inline constexpr std::uint8_t kLruPad = 0xFF;
inline constexpr std::uint64_t kSwarLo = 0x0101010101010101ull;
inline constexpr std::uint64_t kSwarHi = 0x8080808080808080ull;

// Bytes of `word` equal to the byte broadcast in `broadcast` come back with
// bit 7 set. Borrow propagation can mark a rare extra byte (the classic
// haszero caveat), never miss a real one — callers confirm candidates with
// the full-width compare, so false positives only cost that check.
inline std::uint64_t SwarByteMatch(std::uint64_t word, std::uint64_t broadcast) {
  const std::uint64_t x = word ^ broadcast;
  return (x - kSwarLo) & ~x & kSwarHi;
}

constexpr std::size_t LruStride(std::size_t ways) { return (ways + 7) & ~std::size_t{7}; }

// Promotes `way` to MRU: ages strictly younger than the touched way's old
// rank gain a step; the touched way drops to 0. No-op when already MRU.
inline void LruPromote(std::uint8_t* ages, std::size_t stride, unsigned way) {
  const std::uint8_t old_age = ages[way];
  if (old_age == 0) {
    return;
  }
  const std::uint64_t kH = 0x8080808080808080ull;
  const std::uint64_t broadcast = 0x0101010101010101ull * old_age;
  for (std::size_t off = 0; off < stride; off += 8) {
    std::uint64_t a;
    std::memcpy(&a, ages + off, 8);
    // Per-byte a >= old_age: bit 7 survives the subtraction (all real ages
    // and old_age are < 0x80, padding is 0xFF and always "greater").
    const std::uint64_t ge = ((a | kH) - broadcast) & kH;
    a += (~ge & kH) >> 7;  // +1 where a < old_age
    std::memcpy(ages + off, &a, 8);
  }
  ages[way] = 0;
}

// Way holding rank `oldest` (= ways-1, the LRU way of a full set). The ages
// are a permutation, so exactly one byte matches.
inline unsigned LruOldestWay(const std::uint8_t* ages, std::size_t stride,
                             std::uint8_t oldest) {
  const std::uint64_t broadcast = 0x0101010101010101ull * oldest;
  for (std::size_t off = 0;; off += 8) {
    std::uint64_t a;
    std::memcpy(&a, ages + off, 8);
    const std::uint64_t x = a ^ broadcast;  // zero byte where age == oldest
    const std::uint64_t zero =
        (x - 0x0101010101010101ull) & ~x & 0x8080808080808080ull;
    if (zero != 0) {
      return static_cast<unsigned>(off + static_cast<std::size_t>(std::countr_zero(zero)) / 8);
    }
    if (off + 8 >= stride) {
      return 0;  // unreachable for a well-formed permutation
    }
  }
}

}  // namespace tp::hw

#endif  // TP_HW_LRU_HPP_
