// Core scalar types shared across the hardware simulator.
//
// The simulator is a *timing* model: addresses index cache/TLB/predictor
// state and every access yields a cycle cost, but no byte contents are
// stored (programs keep their own C++ state). This is sufficient for
// microarchitectural timing channels, which depend only on hit/miss and
// write-back behaviour, never on data values.
#ifndef TP_HW_TYPES_HPP_
#define TP_HW_TYPES_HPP_

#include <cstddef>
#include <cstdint>

namespace tp::hw {

using Cycles = std::uint64_t;
using VAddr = std::uint64_t;
using PAddr = std::uint64_t;
using Asid = std::uint16_t;
using CoreId = std::uint32_t;
using IrqLine = std::uint32_t;

inline constexpr std::uint64_t kPageBits = 12;
inline constexpr std::uint64_t kPageSize = std::uint64_t{1} << kPageBits;
inline constexpr std::uint64_t kPageOffsetMask = kPageSize - 1;

// Kernel window: kernel virtual addresses are the physical address plus this
// offset (a direct map, as seL4 uses). User virtual addresses live below it.
inline constexpr VAddr kKernelBase = std::uint64_t{1} << 47;

constexpr std::uint64_t PageNumber(std::uint64_t addr) { return addr >> kPageBits; }
constexpr std::uint64_t PageOffset(std::uint64_t addr) { return addr & kPageOffsetMask; }
constexpr std::uint64_t PageAlignDown(std::uint64_t addr) { return addr & ~kPageOffsetMask; }
constexpr std::uint64_t PageAlignUp(std::uint64_t addr) {
  return (addr + kPageSize - 1) & ~kPageOffsetMask;
}

constexpr bool IsKernelAddress(VAddr va) { return va >= kKernelBase; }
constexpr VAddr KernelVaddrFor(PAddr pa) { return pa + kKernelBase; }
constexpr PAddr PaddrOfKernelVaddr(VAddr va) { return va - kKernelBase; }

}  // namespace tp::hw

#endif  // TP_HW_TYPES_HPP_
