// Set-associative write-back cache model with LRU replacement and optional
// slicing (for hashed, distributed last-level caches as on Haswell).
//
// Storage is structure-of-arrays for host speed: one contiguous tag array
// plus packed per-set valid/dirty bitmasks, and per-line 8-bit LRU age
// ranks (0 = MRU .. ways-1 = LRU, an exact per-set recency permutation that
// reproduces the previous global-LRU-clock victim choice bit-for-bit).
// The hit fast path lives in this header so Core::Access inlines it; the
// miss/fill path is out of line. Running valid/dirty counters keep
// FlushAll/DirtyLineCount/ValidLineCount from scanning lines.
//
// Access() reports hit/miss and whether the fill evicted a dirty victim
// (a write-back, which costs extra cycles at the level below).
//
// Page-colouring arithmetic lives here too: a physically-indexed cache with
// more than one page worth of sets per way has Colours() > 1, and the colour
// of a physical page is a pure function of its page number. This is the
// property the time-protection colour allocator builds on (paper §2.3).
#ifndef TP_HW_CACHE_HPP_
#define TP_HW_CACHE_HPP_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/lru.hpp"
#include "hw/taint.hpp"
#include "hw/types.hpp"

namespace tp::hw {

enum class Indexing {
  kVirtual,   // indexed with the virtual address (L1 on most parts)
  kPhysical,  // indexed with the physical address (L2..LLC); colourable
};

struct CacheGeometry {
  std::size_t size_bytes = 0;
  std::size_t line_size = 64;
  std::size_t associativity = 1;
  std::size_t num_slices = 1;  // >1 models a distributed, hashed LLC

  std::size_t TotalLines() const { return size_bytes / line_size; }
  std::size_t SetsPerSlice() const {
    return size_bytes / (line_size * associativity * num_slices);
  }
  // Bytes spanned by one way of one slice; the unit of page colouring.
  std::size_t WaySpanBytes() const { return SetsPerSlice() * line_size; }
  // "" when the geometry is buildable, else the reason. The constructor
  // enforces the same bounds (throwing std::invalid_argument), so fuzzers
  // and config loaders can pre-screen candidates without try/catch — and a
  // degenerate geometry can never reach the division arithmetic above.
  std::string Validate() const;
  // Number of page colours in this cache (1 means uncolourable).
  std::size_t Colours() const {
    std::size_t span = WaySpanBytes();
    return span > kPageSize ? span / kPageSize : 1;
  }
};

struct AccessResult {
  bool hit = false;
  bool writeback = false;      // fill evicted a dirty line
  bool fill = false;           // line was (re)inserted
  bool evicted_valid = false;  // fill evicted a valid line (victim below)
  std::uint64_t evicted_line_addr = 0;  // victim's line number (paddr / line_size)
};

// Hit/miss tallies of a batched access run (see AccessRun).
struct AccessRunResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
};

class SetAssociativeCache {
 public:
  SetAssociativeCache(std::string name, const CacheGeometry& geometry, Indexing indexing);

  // Looks up (and on miss fills) the line containing `addr_for_tag`.
  // `addr_for_index` selects the set: the virtual address for
  // virtually-indexed caches, the physical address otherwise. Caller passes
  // both; the cache picks per its indexing mode.
  AccessResult Access(VAddr addr_for_index, PAddr addr_for_tag, bool write) {
    const Decoded d = Decode(addr_for_index, addr_for_tag);
    const int way = FindWay(d.set, d.tag);
    if (way >= 0) {
      Promote(d.set, static_cast<unsigned>(way));
      if (write) {
        SetDirty(d.set, static_cast<unsigned>(way));
      }
      ++hits_;
      if (taint_.on()) {
        // Retag on hit: the line now reflects this owner's activity at
        // *this* level only (a deterministic L1 re-touch must not launder
        // a secret-dependent LLC copy).
        taint_.Tag(d.set * ways_ + static_cast<std::size_t>(way), taint_owner_,
                   TaintColourOfTag(d.tag));
      }
      AccessResult result;
      result.hit = true;
      return result;
    }
    return MissFill(d, write);
  }

  // Batched run over `count` addresses advancing both index and tag by
  // `stride_bytes`: one decode-and-probe loop with no per-access dispatch.
  AccessRunResult AccessRun(VAddr base_for_index, PAddr base_for_tag, std::size_t count,
                            std::size_t stride_bytes, bool write);

  // Inserts a line without reporting timing (hardware prefetch fill).
  // Returns true if the fill evicted a dirty line.
  bool Insert(VAddr addr_for_index, PAddr addr_for_tag, bool dirty = false);

  bool Contains(VAddr addr_for_index, PAddr addr_for_tag) const {
    const Decoded d = Decode(addr_for_index, addr_for_tag);
    return FindWay(d.set, d.tag) >= 0;
  }

  // Invalidates one line if present; returns true if it was dirty.
  bool InvalidateLine(VAddr addr_for_index, PAddr addr_for_tag);

  // Invalidate by physical address only. For virtually-indexed caches whose
  // index spans more bits than the page offset, every candidate set is
  // probed (the alias sets a physical line may occupy).
  bool InvalidateLineByPaddr(PAddr paddr);

  // Write-back + invalidate of the entire cache; returns dirty lines flushed.
  std::size_t FlushAll();
  // Invalidate without write-back (instruction caches).
  std::size_t InvalidateAll();

  std::size_t DirtyLineCount() const { return dirty_count_; }
  std::size_t ValidLineCount() const { return valid_count_; }

  // Set index (within its slice) that an address maps to; exposed so attack
  // code can construct eviction sets exactly as Mastik does on hardware.
  // Power-of-two geometries (every real platform) decode with shift/mask;
  // the div/mod fallback keeps odd test geometries exact.
  std::size_t SetIndexOf(std::uint64_t addr) const {
    if (line_shift_ >= 0 && set_mask_ != 0) {
      return static_cast<std::size_t>((addr >> line_shift_) & set_mask_);
    }
    return static_cast<std::size_t>((addr / geometry_.line_size) % sets_per_slice_);
  }
  std::size_t SliceOf(PAddr paddr) const { return SliceHash(LineOf(paddr)); }

  // Line number (paddr / line_size) — the tag — via the same fast path.
  std::uint64_t LineOf(PAddr paddr) const {
    return line_shift_ >= 0 ? paddr >> line_shift_ : paddr / geometry_.line_size;
  }

  const CacheGeometry& geometry() const { return geometry_; }
  Indexing indexing() const { return indexing_; }
  const std::string& name() const { return name_; }

  // Page colour of a physical address for this cache's geometry.
  std::size_t ColourOf(PAddr paddr) const {
    return PageNumber(paddr) % geometry_.Colours();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Batch-replay accounting (Core::AccessBatch): credits the stats an
  // elided fixpoint replay would have recorded. State is already at the
  // batch's fixpoint, so only the counters move.
  void AddReplayStats(std::uint64_t hits, std::uint64_t misses, std::uint64_t writebacks) {
    hits_ += hits;
    misses_ += misses;
    writebacks_ += writebacks;
  }
  std::uint64_t writebacks() const { return writebacks_; }

  // Folds the behavioural state (tags, LRU ages, valid/dirty masks, taint
  // stamps) into a batch-replay digest. The signature array is a pure
  // per-slot function of the tag array and is skipped.
  void DigestState(std::uint64_t& h) const;
  // Bytes DigestState folds — drives the replay memo's digest-cost gate.
  std::size_t DigestSizeBytes() const {
    return tags_.size() * sizeof(std::uint64_t) + ages_.size() +
           (valid_.size() + dirty_.size()) * sizeof(std::uint64_t) +
           taint_.DigestSizeBytes();
  }
  void ResetStats();

  // Taint metadata (active only when taint tracking was enabled at
  // construction). The owner stamps every line this cache fills or touches
  // until changed; entry index is set * ways + way.
  void SetTaintOwner(TaintTag owner) { taint_owner_ = owner; }
  TaintTag taint_owner() const { return taint_owner_; }
  const TaintMap& taint() const { return taint_; }
  std::size_t ways() const { return ways_; }
  std::size_t sets_per_slice() const { return sets_per_slice_; }

  // Physical address of the line held at (global set, way), or 0 when the
  // way is invalid — lets the contract checker name the violating line
  // itself, not just the slot it occupies.
  PAddr LinePaddrAt(std::size_t set, std::size_t way) const {
    if (set >= valid_.size() || way >= ways_ || ((valid_[set] >> way) & 1) == 0) {
      return 0;
    }
    return static_cast<PAddr>(tags_[set * ways_ + way] * geometry_.line_size);
  }

 private:
  // Page colour of the line a tag denotes, clamped to one colour when the
  // geometry has more colours than a mask word holds.
  std::size_t TaintColourOfTag(std::uint64_t tag) const {
    return taint_colours_ > 1
               ? PageNumber(static_cast<PAddr>(tag * geometry_.line_size)) % taint_colours_
               : 0;
  }

  // One-step address decode shared by every lookup path: global set index
  // (slice * sets_per_slice + set) and tag from a single pass over the
  // address bits, using the constants precomputed at construction.
  struct Decoded {
    std::size_t set;
    std::uint64_t tag;
  };
  Decoded Decode(VAddr addr_for_index, PAddr addr_for_tag) const {
    const std::uint64_t tag = LineOf(addr_for_tag);
    std::size_t set;
    if (indexing_ == Indexing::kPhysical) {
      // Physical indexing shares the tag's line decode.
      set = set_mask_ != 0 && line_shift_ >= 0
                ? static_cast<std::size_t>(tag & set_mask_)
                : static_cast<std::size_t>(tag % sets_per_slice_);
    } else {
      set = SetIndexOf(addr_for_index);
    }
    if (num_slices_ > 1) {
      set += SliceHash(tag) * sets_per_slice_;
    }
    return Decoded{set, tag};
  }

  // Slice hash over the line address, modelling the undocumented Haswell LLC
  // slice function: a strong bit mix (the real function is a parity tree
  // over many address bits) that spreads even highly structured address
  // patterns over the slices, while leaving the per-slice set index (and
  // therefore page-colour arithmetic) intact.
  std::size_t SliceHash(std::uint64_t line_addr) const {
    if (num_slices_ <= 1) {
      return 0;
    }
    std::uint64_t h = line_addr * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    h *= 0xD6E8FEB86659FD93ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(slice_mask_ != 0 ? h & slice_mask_ : h % num_slices_);
  }

  // 8-bit signature of a tag, kept per way in an age-stride array so a whole
  // set compares in one SWAR word op. A strong multiplicative mix: tags in
  // one set differ only above the index bits, which a truncated low byte
  // would mostly discard.
  static std::uint8_t TagSignature(std::uint64_t tag) {
    return static_cast<std::uint8_t>((tag * 0x9E3779B97F4A7C15ull) >> 56);
  }

  // Way holding (set, tag), or -1. The single tag-match used by the hit
  // path, Contains and InvalidateLine alike. The signature scan visits
  // candidate ways in ascending order and confirms each against the valid
  // mask and the full tag, so the first confirmed way matches the previous
  // way-0-first scan exactly; stale signatures (invalidated or replaced
  // ways) and SWAR borrow artefacts die at the confirm.
  int FindWay(std::size_t set, std::uint64_t tag) const {
    const std::uint64_t valid = valid_[set];
    if (valid == 0) {
      return -1;
    }
    const std::uint64_t* tags = tags_.data() + set * ways_;
    const std::uint8_t* sigs = sigs_.data() + set * age_stride_;
    const std::uint64_t broadcast = kSwarLo * TagSignature(tag);
    for (std::size_t off = 0; off < age_stride_; off += 8) {
      std::uint64_t word;
      std::memcpy(&word, sigs + off, 8);
      std::uint64_t match = SwarByteMatch(word, broadcast);
      while (match != 0) {
        const unsigned way = static_cast<unsigned>(off) +
                             static_cast<unsigned>(std::countr_zero(match)) / 8;
        match &= match - 1;
        if (((valid >> way) & 1) != 0 && tags[way] == tag) {
          return static_cast<int>(way);
        }
      }
    }
    return -1;
  }

  // Exact-LRU promotion: ages form a per-set permutation ordered by last
  // touch; every way younger than the touched one ages by one step.
  void Promote(std::size_t set, unsigned way) {
    LruPromote(ages_.data() + set * age_stride_, age_stride_, way);
  }

  void SetDirty(std::size_t set, unsigned way) {
    const std::uint64_t bit = std::uint64_t{1} << way;
    if ((dirty_[set] & bit) == 0) {
      dirty_[set] |= bit;
      ++dirty_count_;
    }
  }

  // The way a fill replaces: the last invalid way when the set has room
  // (matching the previous scan, where a later invalid way overwrote an
  // earlier choice), else the LRU-oldest way. In the header (with MissFill)
  // so the demand-miss path inlines into Access.
  unsigned PickVictim(std::size_t set) const {
    const std::uint64_t invalid = ~valid_[set] & full_mask_;
    if (invalid != 0) {
      // Highest-numbered invalid way.
      return static_cast<unsigned>(std::bit_width(invalid) - 1);
    }
    return LruOldestWay(ages_.data() + set * age_stride_, age_stride_,
                        static_cast<std::uint8_t>(ways_ - 1));
  }

  AccessResult MissFill(const Decoded& d, bool write) {
    ++misses_;
    AccessResult result;
    const unsigned victim = PickVictim(d.set);
    const std::uint64_t bit = std::uint64_t{1} << victim;
    if ((valid_[d.set] & bit) != 0) {
      result.evicted_valid = true;
      result.evicted_line_addr = tags_[d.set * ways_ + victim];
      if ((dirty_[d.set] & bit) != 0) {
        result.writeback = true;
        ++writebacks_;
        dirty_[d.set] &= ~bit;
        --dirty_count_;
      }
    } else {
      valid_[d.set] |= bit;
      ++valid_count_;
    }
    tags_[d.set * ways_ + victim] = d.tag;
    sigs_[d.set * age_stride_ + victim] = TagSignature(d.tag);
    if (write) {
      SetDirty(d.set, victim);
    }
    Promote(d.set, victim);
    if (taint_.on()) {
      taint_.Tag(d.set * ways_ + victim, taint_owner_, TaintColourOfTag(d.tag));
    }
    result.fill = true;
    return result;
  }

  std::string name_;
  CacheGeometry geometry_;
  Indexing indexing_;
  std::size_t sets_per_slice_ = 1;
  std::size_t num_slices_ = 1;
  std::size_t ways_ = 1;
  // Precomputed decode constants: line_shift_ = log2(line_size) (or -1 when
  // line_size is not a power of two), set_mask_ = sets_per_slice - 1 when
  // that is a power of two (else 0 -> modulo fallback), slice_mask_
  // likewise for the slice count.
  int line_shift_ = -1;
  std::uint64_t set_mask_ = 0;
  std::uint64_t slice_mask_ = 0;
  std::uint64_t full_mask_ = 1;  // low `ways_` bits set

  std::size_t age_stride_ = 8;       // per-set age/signature bytes, padded for SWAR
  std::vector<std::uint64_t> tags_;  // [slice][set][way] flattened
  std::vector<std::uint8_t> ages_;   // LRU rank per line, 0 = MRU
  std::vector<std::uint8_t> sigs_;   // TagSignature per line (stale until valid)
  std::vector<std::uint64_t> valid_;  // per-set way bitmask
  std::vector<std::uint64_t> dirty_;  // per-set way bitmask
  std::size_t valid_count_ = 0;
  std::size_t dirty_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;

  TaintMap taint_;
  TaintTag taint_owner_ = 0;
  std::size_t taint_colours_ = 1;
};

}  // namespace tp::hw

#endif  // TP_HW_CACHE_HPP_
