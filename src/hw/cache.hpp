// Set-associative write-back cache model with LRU replacement and optional
// slicing (for hashed, distributed last-level caches as on Haswell).
//
// The cache records, per line: physical tag, valid, dirty, and an LRU stamp.
// Access() reports hit/miss and whether the fill evicted a dirty victim
// (a write-back, which costs extra cycles at the level below).
//
// Page-colouring arithmetic lives here too: a physically-indexed cache with
// more than one page worth of sets per way has Colours() > 1, and the colour
// of a physical page is a pure function of its page number. This is the
// property the time-protection colour allocator builds on (paper §2.3).
#ifndef TP_HW_CACHE_HPP_
#define TP_HW_CACHE_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace tp::hw {

enum class Indexing {
  kVirtual,   // indexed with the virtual address (L1 on most parts)
  kPhysical,  // indexed with the physical address (L2..LLC); colourable
};

struct CacheGeometry {
  std::size_t size_bytes = 0;
  std::size_t line_size = 64;
  std::size_t associativity = 1;
  std::size_t num_slices = 1;  // >1 models a distributed, hashed LLC

  std::size_t TotalLines() const { return size_bytes / line_size; }
  std::size_t SetsPerSlice() const {
    return size_bytes / (line_size * associativity * num_slices);
  }
  // Bytes spanned by one way of one slice; the unit of page colouring.
  std::size_t WaySpanBytes() const { return SetsPerSlice() * line_size; }
  // Number of page colours in this cache (1 means uncolourable).
  std::size_t Colours() const {
    std::size_t span = WaySpanBytes();
    return span > kPageSize ? span / kPageSize : 1;
  }
};

struct AccessResult {
  bool hit = false;
  bool writeback = false;      // fill evicted a dirty line
  bool fill = false;           // line was (re)inserted
  bool evicted_valid = false;  // fill evicted a valid line (victim below)
  std::uint64_t evicted_line_addr = 0;  // victim's line number (paddr / line_size)
};

class SetAssociativeCache {
 public:
  SetAssociativeCache(std::string name, const CacheGeometry& geometry, Indexing indexing);

  // Looks up (and on miss fills) the line containing `addr_for_tag`.
  // `addr_for_index` selects the set: the virtual address for
  // virtually-indexed caches, the physical address otherwise. Caller passes
  // both; the cache picks per its indexing mode.
  AccessResult Access(VAddr addr_for_index, PAddr addr_for_tag, bool write);

  // Inserts a line without reporting timing (hardware prefetch fill).
  // Returns true if the fill evicted a dirty line.
  bool Insert(VAddr addr_for_index, PAddr addr_for_tag, bool dirty = false);

  bool Contains(VAddr addr_for_index, PAddr addr_for_tag) const;

  // Invalidates one line if present; returns true if it was dirty.
  bool InvalidateLine(VAddr addr_for_index, PAddr addr_for_tag);

  // Invalidate by physical address only. For virtually-indexed caches whose
  // index spans more bits than the page offset, every candidate set is
  // probed (the alias sets a physical line may occupy).
  bool InvalidateLineByPaddr(PAddr paddr);

  // Write-back + invalidate of the entire cache; returns dirty lines flushed.
  std::size_t FlushAll();
  // Invalidate without write-back (instruction caches).
  std::size_t InvalidateAll();

  std::size_t DirtyLineCount() const;
  std::size_t ValidLineCount() const;

  // Set index (within its slice) that an address maps to; exposed so attack
  // code can construct eviction sets exactly as Mastik does on hardware.
  // Power-of-two geometries (every real platform) decode with shift/mask;
  // the div/mod fallback keeps odd test geometries exact.
  std::size_t SetIndexOf(std::uint64_t addr) const {
    if (line_shift_ >= 0 && set_mask_ != 0) {
      return static_cast<std::size_t>((addr >> line_shift_) & set_mask_);
    }
    return static_cast<std::size_t>((addr / geometry_.line_size) % sets_per_slice_);
  }
  std::size_t SliceOf(PAddr paddr) const;

  // Line number (paddr / line_size) — the tag — via the same fast path.
  std::uint64_t LineOf(PAddr paddr) const {
    return line_shift_ >= 0 ? paddr >> line_shift_ : paddr / geometry_.line_size;
  }

  const CacheGeometry& geometry() const { return geometry_; }
  Indexing indexing() const { return indexing_; }
  const std::string& name() const { return name_; }

  // Page colour of a physical address for this cache's geometry.
  std::size_t ColourOf(PAddr paddr) const {
    return PageNumber(paddr) % geometry_.Colours();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  void ResetStats();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t TagOf(PAddr paddr) const { return LineOf(paddr); }
  // Flat storage index of the first way of the set for `index_addr`/`tag_addr`.
  std::size_t SetBase(VAddr addr_for_index, PAddr addr_for_tag) const;
  // One-step address decode for the hot Access/Insert path: set base and
  // tag from a single pass over the address bits.
  struct Decoded {
    std::size_t base;
    std::uint64_t tag;
  };
  Decoded Decode(VAddr addr_for_index, PAddr addr_for_tag) const;

  std::string name_;
  CacheGeometry geometry_;
  Indexing indexing_;
  std::size_t sets_per_slice_;
  // Precomputed decode constants: line_shift_ = log2(line_size) (or -1 when
  // line_size is not a power of two), set_mask_ = sets_per_slice - 1 when
  // that is a power of two (else 0 -> modulo fallback).
  int line_shift_ = -1;
  std::uint64_t set_mask_ = 0;
  std::vector<Line> lines_;  // [slice][set][way] flattened
  std::uint64_t lru_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace tp::hw

#endif  // TP_HW_CACHE_HPP_
