// Interrupt controller model with the two architectures' delivery semantics
// the paper distinguishes in §4.3:
//
//  - kX86Hierarchical: interrupts are routed through a hierarchy; an IRQ
//    raised while unmasked is *accepted* by the CPU and remains deliverable
//    even if the bottom-level source is masked afterwards. The kernel must
//    probe and acknowledge pending-accepted interrupts after masking or they
//    fire across the partition boundary (the race the paper resolves).
//  - kArmSimple: single-level control; masking immediately suppresses
//    delivery, no race.
//
// Line state is held as packed bitmask words so PendingDeliverable — polled
// once per kernel step — is a handful of word ops instead of a per-line
// scan. Lowest-numbered deliverable line wins, exactly as before.
#ifndef TP_HW_INTERRUPT_CONTROLLER_HPP_
#define TP_HW_INTERRUPT_CONTROLLER_HPP_

#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "hw/types.hpp"

namespace tp::hw {

enum class IrqArch {
  kX86Hierarchical,
  kArmSimple,
};

class InterruptController {
 public:
  InterruptController(IrqArch arch, std::size_t num_lines);

  // Device side: assert the line.
  void Raise(IrqLine line);

  // Kernel side.
  void Mask(IrqLine line);
  void Unmask(IrqLine line);
  void MaskAll();

  // The highest-priority (lowest-numbered) IRQ deliverable right now, if any.
  std::optional<IrqLine> PendingDeliverable() const {
    for (std::size_t w = 0; w < raised_.size(); ++w) {
      const std::uint64_t deliverable =
          arch_ == IrqArch::kX86Hierarchical
              ? accepted_[w] | (raised_[w] & ~masked_[w])
              : raised_[w] & ~masked_[w];
      if (deliverable != 0) {
        return static_cast<IrqLine>(w * 64 + std::countr_zero(deliverable));
      }
    }
    return std::nullopt;
  }

  // Drains interrupts that were accepted before masking (x86 race window);
  // returns how many were acknowledged at the hardware level. No-op on Arm.
  std::size_t ProbeAndAckAccepted();

  // CPU took the interrupt: clear raised+accepted state for the line.
  void Ack(IrqLine line);

  bool IsRaised(IrqLine line) const { return Test(raised_, Checked(line)); }
  bool IsMasked(IrqLine line) const { return Test(masked_, Checked(line)); }
  // Whether this single line would be delivered right now (same per-arch
  // rule as PendingDeliverable); used by the contract checker to spot a
  // partitioned-out domain's IRQ that could still fire.
  bool IsDeliverable(IrqLine line) const {
    const IrqLine l = Checked(line);
    if (arch_ == IrqArch::kX86Hierarchical && Test(accepted_, l)) {
      return true;
    }
    return Test(raised_, l) && !Test(masked_, l);
  }
  std::size_t num_lines() const { return num_lines_; }
  IrqArch arch() const { return arch_; }

 private:
  IrqLine Checked(IrqLine line) const {
    if (line >= num_lines_) {
      throw std::out_of_range("irq line out of range");
    }
    return line;
  }
  static bool Test(const std::vector<std::uint64_t>& words, IrqLine line) {
    return (words[line / 64] >> (line % 64)) & 1;
  }
  static void Set(std::vector<std::uint64_t>& words, IrqLine line) {
    words[line / 64] |= std::uint64_t{1} << (line % 64);
  }
  static void Clear(std::vector<std::uint64_t>& words, IrqLine line) {
    words[line / 64] &= ~(std::uint64_t{1} << (line % 64));
  }

  IrqArch arch_;
  std::size_t num_lines_;
  std::vector<std::uint64_t> raised_;
  std::vector<std::uint64_t> masked_;
  std::vector<std::uint64_t> accepted_;  // x86: latched past the mask
};

}  // namespace tp::hw

#endif  // TP_HW_INTERRUPT_CONTROLLER_HPP_
