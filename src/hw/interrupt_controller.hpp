// Interrupt controller model with the two architectures' delivery semantics
// the paper distinguishes in §4.3:
//
//  - kX86Hierarchical: interrupts are routed through a hierarchy; an IRQ
//    raised while unmasked is *accepted* by the CPU and remains deliverable
//    even if the bottom-level source is masked afterwards. The kernel must
//    probe and acknowledge pending-accepted interrupts after masking or they
//    fire across the partition boundary (the race the paper resolves).
//  - kArmSimple: single-level control; masking immediately suppresses
//    delivery, no race.
#ifndef TP_HW_INTERRUPT_CONTROLLER_HPP_
#define TP_HW_INTERRUPT_CONTROLLER_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/types.hpp"

namespace tp::hw {

enum class IrqArch {
  kX86Hierarchical,
  kArmSimple,
};

class InterruptController {
 public:
  InterruptController(IrqArch arch, std::size_t num_lines);

  // Device side: assert the line.
  void Raise(IrqLine line);

  // Kernel side.
  void Mask(IrqLine line);
  void Unmask(IrqLine line);
  void MaskAll();

  // The highest-priority (lowest-numbered) IRQ deliverable right now, if any.
  std::optional<IrqLine> PendingDeliverable() const;

  // Drains interrupts that were accepted before masking (x86 race window);
  // returns how many were acknowledged at the hardware level. No-op on Arm.
  std::size_t ProbeAndAckAccepted();

  // CPU took the interrupt: clear raised+accepted state for the line.
  void Ack(IrqLine line);

  bool IsRaised(IrqLine line) const { return lines_.at(line).raised; }
  bool IsMasked(IrqLine line) const { return lines_.at(line).masked; }
  std::size_t num_lines() const { return lines_.size(); }
  IrqArch arch() const { return arch_; }

 private:
  struct Line {
    bool raised = false;
    bool masked = true;
    bool accepted = false;  // x86: latched past the mask
  };

  IrqArch arch_;
  std::vector<Line> lines_;
};

}  // namespace tp::hw

#endif  // TP_HW_INTERRUPT_CONTROLLER_HPP_
