#include "hw/prefetcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/digest.hpp"

namespace tp::hw {

std::string PrefetcherGeometry::Validate() const {
  // The per-miss fill list is a fixed inline array; a geometry that could
  // overflow it must fail loudly at construction, not silently drop fills
  // mid-miss. Each term is bounded before the sum so the check cannot wrap.
  const std::size_t degree = static_cast<std::size_t>(std::max(prefetch_degree, 0));
  if (max_stale_issues_per_miss > PrefetchFillList::kCapacity ||
      degree > PrefetchFillList::kCapacity ||
      max_stale_issues_per_miss + degree > PrefetchFillList::kCapacity) {
    return "max_stale_issues_per_miss + prefetch_degree exceeds the inline "
           "fill-list capacity";
  }
  // PageOf divides by lines_per_page on every trained miss.
  if (lines_per_page == 0 && (data_slots > 0 || instruction_slots > 0)) {
    return "lines_per_page must be nonzero when any stream slot exists";
  }
  return "";
}

StreamPrefetcher::StreamPrefetcher(const PrefetcherGeometry& geometry) : geometry_(geometry) {
  if (std::string err = geometry_.Validate(); !err.empty()) {
    throw std::invalid_argument("StreamPrefetcher: " + err);
  }
  data_slots_.resize(geometry_.data_slots);
  instruction_slots_.resize(geometry_.instruction_slots);
}

std::uint64_t StreamPrefetcher::PageOf(std::uint64_t line) const {
  return line / geometry_.lines_per_page;
}

PrefetchOutcome StreamPrefetcher::HandleMiss(std::vector<Stream>& slots, std::uint64_t line,
                                             std::uint16_t owner, std::uint16_t taint_owner,
                                             bool enabled) {
  PrefetchOutcome outcome;
  if (slots.empty()) {
    return outcome;
  }

  // Stale streams contend for bandwidth: each issues one of its remaining
  // credited prefetches, delaying this demand miss.
  std::size_t stale_issued = 0;
  for (Stream& s : slots) {
    if (stale_issued >= geometry_.max_stale_issues_per_miss ||
        outcome.fills.size() >= PrefetchFillList::kCapacity) {
      break;
    }
    if (s.valid && s.owner != owner && s.credits > 0 &&
        s.confidence >= geometry_.confidence_threshold) {
      const std::uint64_t prev = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(s.next_line) - s.direction);
      if (PageOf(s.next_line) != PageOf(prev)) {
        // The stream ran off its page: a real streamer stops here (and a
        // fill past the boundary would land in another domain's frame).
        s.valid = false;
        s.credits = 0;
        continue;
      }
      --s.credits;
      outcome.fills.push_back(s.next_line, s.taint_owner);
      s.next_line = static_cast<std::uint64_t>(static_cast<std::int64_t>(s.next_line) +
                                               s.direction);
      outcome.interference += geometry_.interference_cycles;
      ++stale_issued;
    }
  }

  if (!enabled) {
    return outcome;
  }

  // Train: does this miss continue an existing stream?
  for (Stream& s : slots) {
    if (!s.valid || s.owner != owner) {
      continue;
    }
    if (s.next_line == line) {
      s.confidence = std::min(s.confidence + 1, 8);
      s.credits = geometry_.credits_on_train;
      s.taint_owner = taint_owner;
      s.next_line = static_cast<std::uint64_t>(static_cast<std::int64_t>(line) + s.direction);
      if (s.confidence >= geometry_.confidence_threshold) {
        for (int i = 0; i < geometry_.prefetch_degree &&
                        outcome.fills.size() < PrefetchFillList::kCapacity;
             ++i) {
          const std::uint64_t fill = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(line) + s.direction * (i + 1));
          if (PageOf(fill) != PageOf(line)) {
            break;  // degree fills stop at the page boundary too
          }
          outcome.fills.push_back(fill, taint_owner);
        }
      }
      if (PageOf(s.next_line) != PageOf(line)) {
        // Trained to the end of its page: the stream is complete. A miss on
        // the next page allocates a fresh stream for that page.
        s.valid = false;
        s.credits = 0;
      }
      return outcome;
    }
    if (s.next_line == line - 2 * static_cast<std::uint64_t>(s.direction)) {
      // Near miss (skipped a line); keep tracking without prefetching.
      s.next_line = static_cast<std::uint64_t>(static_cast<std::int64_t>(line) + s.direction);
      return outcome;
    }
  }

  // Allocate a new stream slot (round-robin victim among invalid-or-oldest).
  std::size_t& rr = (&slots == &data_slots_) ? data_victim_rr_ : instr_victim_rr_;
  std::size_t victim = rr;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    std::size_t idx = (rr + i) % slots.size();
    if (!slots[idx].valid) {
      victim = idx;
      break;
    }
  }
  rr = (victim + 1) % slots.size();
  Stream& s = slots[victim];
  s.valid = true;
  s.owner = owner;
  s.taint_owner = taint_owner;
  s.direction = 1;
  s.next_line = line + 1;
  s.confidence = 1;
  s.credits = geometry_.credits_on_train;
  return outcome;
}

PrefetchOutcome StreamPrefetcher::OnDemandMiss(std::uint64_t line, std::uint16_t owner,
                                               bool instruction, std::uint16_t taint_owner) {
  if (instruction) {
    return HandleMiss(instruction_slots_, line, owner, taint_owner, /*enabled=*/true);
  }
  return HandleMiss(data_slots_, line, owner, taint_owner, data_enabled_);
}

void StreamPrefetcher::DigestState(std::uint64_t& h) const {
  auto fold_slots = [&h](const std::vector<Stream>& slots) {
    for (const Stream& s : slots) {
      DigestWord(h, s.next_line);
      DigestWord(h, static_cast<std::uint64_t>(s.direction));
      DigestWord(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.confidence)));
      DigestWord(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.credits)));
      DigestWord(h, (static_cast<std::uint64_t>(s.owner) << 32) |
                        (static_cast<std::uint64_t>(s.taint_owner) << 16) |
                        (s.valid ? 1u : 0u));
    }
  };
  fold_slots(data_slots_);
  fold_slots(instruction_slots_);
  DigestWord(h, data_victim_rr_);
  DigestWord(h, instr_victim_rr_);
  DigestWord(h, data_enabled_ ? 1u : 0u);
}

void StreamPrefetcher::SetDataPrefetcherEnabled(bool enabled) {
  data_enabled_ = enabled;
  if (!enabled) {
    for (Stream& s : data_slots_) {
      s.valid = false;
      s.credits = 0;
    }
  }
}

std::size_t StreamPrefetcher::ActiveDataStreams() const {
  std::size_t n = 0;
  for (const Stream& s : data_slots_) {
    if (s.valid && s.confidence >= geometry_.confidence_threshold) {
      ++n;
    }
  }
  return n;
}

std::size_t StreamPrefetcher::ActiveInstructionStreams() const {
  std::size_t n = 0;
  for (const Stream& s : instruction_slots_) {
    if (s.valid && s.confidence >= geometry_.confidence_threshold) {
      ++n;
    }
  }
  return n;
}

std::size_t StreamPrefetcher::StaleDataStreams(std::uint16_t owner) const {
  std::size_t n = 0;
  for (const Stream& s : data_slots_) {
    if (s.valid && s.owner != owner && s.credits > 0) {
      ++n;
    }
  }
  return n;
}

std::size_t StreamPrefetcher::StaleInstructionStreams(std::uint16_t owner) const {
  std::size_t n = 0;
  for (const Stream& s : instruction_slots_) {
    if (s.valid && s.owner != owner && s.credits > 0) {
      ++n;
    }
  }
  return n;
}

std::size_t StreamPrefetcher::StaleStreams(std::uint16_t owner) const {
  return StaleDataStreams(owner) + StaleInstructionStreams(owner);
}

}  // namespace tp::hw
