#include "hw/tlb.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "hw/digest.hpp"

namespace tp::hw {

std::string TlbGeometry::Validate() const {
  // One bit per way in the packed valid/global masks (see cache.cpp).
  if (associativity < 1 || associativity > 64) {
    return "associativity must be 1..64";
  }
  if (entries == 0 || entries % associativity != 0) {
    return "entries must be a nonzero multiple of associativity";
  }
  return "";
}

Tlb::Tlb(std::string name, const TlbGeometry& geometry)
    : name_(std::move(name)), geometry_(geometry) {
  if (std::string err = geometry_.Validate(); !err.empty()) {
    throw std::invalid_argument("Tlb " + name_ + ": " + err);
  }
  sets_ = geometry_.Sets();
  ways_ = geometry_.associativity;
  if (sets_ > 0 && std::has_single_bit(sets_)) {
    set_mask_ = sets_ - 1;
  }
  full_mask_ = ways_ == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << ways_) - 1;

  vpns_.resize(geometry_.entries);
  asids_.resize(geometry_.entries);
  age_stride_ = LruStride(ways_);
  ages_.assign(sets_ * age_stride_, kLruPad);
  for (std::size_t set = 0; set < sets_; ++set) {
    for (std::size_t w = 0; w < ways_; ++w) {
      ages_[set * age_stride_ + w] = static_cast<std::uint8_t>(w);
    }
  }
  sigs_.assign(sets_ * age_stride_, 0);
  valid_.assign(sets_, 0);
  global_.assign(sets_, 0);

  if (TaintTrackingEnabled()) {
    taint_.Enable(geometry_.entries, 1);
  }
}

unsigned Tlb::PickVictim(std::size_t set) const {
  const std::uint64_t invalid = ~valid_[set] & full_mask_;
  if (invalid != 0) {
    // Highest-numbered invalid way, matching the previous scan order.
    return static_cast<unsigned>(std::bit_width(invalid) - 1);
  }
  return LruOldestWay(ages_.data() + set * age_stride_, age_stride_,
                      static_cast<std::uint8_t>(ways_ - 1));
}

void Tlb::Insert(std::uint64_t vpn, Asid asid, bool global) {
  const std::size_t set = SetOf(vpn);
  const std::size_t base = set * ways_;
  if (const int way = FindEntry(set, vpn, asid); way >= 0) {
    Promote(set, static_cast<unsigned>(way));
    if (taint_.on()) {
      taint_.Tag(base + static_cast<std::size_t>(way), taint_owner_, 0);
    }
    return;  // already present
  }
  const unsigned victim = PickVictim(set);
  const std::uint64_t bit = std::uint64_t{1} << victim;
  if ((valid_[set] & bit) == 0) {
    valid_[set] |= bit;
    ++valid_count_;
  }
  vpns_[base + victim] = vpn;
  asids_[base + victim] = asid;
  sigs_[set * age_stride_ + victim] = VpnSignature(vpn);
  if (global) {
    global_[set] |= bit;
  } else {
    global_[set] &= ~bit;
  }
  Promote(set, victim);
  if (taint_.on()) {
    taint_.Tag(base + victim, taint_owner_, 0);
  }
}

void Tlb::FlushAll() {
  std::fill(valid_.begin(), valid_.end(), 0);
  valid_count_ = 0;
  if (taint_.on()) {
    taint_.ClearAll();
  }
}

void Tlb::FlushNonGlobal() {
  std::size_t remaining = 0;
  for (std::size_t set = 0; set < sets_; ++set) {
    if (taint_.on()) {
      for (std::uint64_t m = valid_[set] & ~global_[set]; m != 0; m &= m - 1) {
        const unsigned way = static_cast<unsigned>(std::countr_zero(m));
        taint_.Clear(set * ways_ + way);
      }
    }
    valid_[set] &= global_[set];
    remaining += static_cast<std::size_t>(std::popcount(valid_[set]));
  }
  valid_count_ = remaining;
}

void Tlb::FlushAsid(Asid asid) {
  for (std::size_t set = 0; set < sets_; ++set) {
    const std::size_t base = set * ways_;
    for (std::uint64_t m = valid_[set] & ~global_[set]; m != 0; m &= m - 1) {
      const unsigned way = static_cast<unsigned>(std::countr_zero(m));
      if (asids_[base + way] == asid) {
        valid_[set] &= ~(std::uint64_t{1} << way);
        --valid_count_;
        if (taint_.on()) {
          taint_.Clear(base + way);
        }
      }
    }
  }
}

void Tlb::DigestState(std::uint64_t& h) const {
  DigestVec(h, vpns_);
  DigestVec(h, asids_);
  DigestVec(h, ages_);
  DigestVec(h, valid_);
  DigestVec(h, global_);
  taint_.DigestState(h);
}

void Tlb::ResetStats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace tp::hw
