#include "hw/tlb.hpp"

#include <cassert>
#include <utility>

namespace tp::hw {

Tlb::Tlb(std::string name, const TlbGeometry& geometry)
    : name_(std::move(name)), geometry_(geometry) {
  assert(geometry_.entries % geometry_.associativity == 0);
  entries_.resize(geometry_.entries);
  sets_ = geometry_.Sets();
  if (sets_ > 0 && (sets_ & (sets_ - 1)) == 0) {
    set_mask_ = sets_ - 1;
  }
}

bool Tlb::Lookup(std::uint64_t vpn, Asid asid) {
  std::size_t base = SetBase(vpn);
  for (std::size_t way = 0; way < geometry_.associativity; ++way) {
    Entry& e = entries_[base + way];
    if (e.valid && e.vpn == vpn && (e.global || e.asid == asid)) {
      e.lru = ++lru_clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

void Tlb::Insert(std::uint64_t vpn, Asid asid, bool global) {
  std::size_t base = SetBase(vpn);
  std::size_t victim = base;
  std::uint64_t victim_lru = ~std::uint64_t{0};
  for (std::size_t way = 0; way < geometry_.associativity; ++way) {
    Entry& e = entries_[base + way];
    if (e.valid && e.vpn == vpn && (e.global || e.asid == asid)) {
      e.lru = ++lru_clock_;
      return;  // already present
    }
    if (!e.valid) {
      victim = base + way;
      victim_lru = 0;
    } else if (e.lru < victim_lru) {
      victim = base + way;
      victim_lru = e.lru;
    }
  }
  Entry& e = entries_[victim];
  e.vpn = vpn;
  e.asid = asid;
  e.global = global;
  e.valid = true;
  e.lru = ++lru_clock_;
}

void Tlb::FlushAll() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

void Tlb::FlushNonGlobal() {
  for (Entry& e : entries_) {
    if (!e.global) {
      e.valid = false;
    }
  }
}

void Tlb::FlushAsid(Asid asid) {
  for (Entry& e : entries_) {
    if (e.valid && !e.global && e.asid == asid) {
      e.valid = false;
    }
  }
}

std::size_t Tlb::ValidCount() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.valid) {
      ++n;
    }
  }
  return n;
}

void Tlb::ResetStats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace tp::hw
