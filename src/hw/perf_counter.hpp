// Per-core performance-monitoring counters, the receiver-side observable of
// several attacks in the paper (e.g. Fig. 3 counts LLC misses).
#ifndef TP_HW_PERF_COUNTER_HPP_
#define TP_HW_PERF_COUNTER_HPP_

#include <cstdint>

namespace tp::hw {

struct PerfCounters {
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t page_walks = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t fetches = 0;

  void Reset() { *this = PerfCounters{}; }
};

}  // namespace tp::hw

#endif  // TP_HW_PERF_COUNTER_HPP_
