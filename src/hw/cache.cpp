#include "hw/cache.hpp"

#include <cassert>
#include <utility>

namespace tp::hw {

namespace {

// Slice hash over the line address, modelling the undocumented Haswell LLC
// slice function: a strong bit mix (the real function is a parity tree over
// many address bits) that spreads even highly structured address patterns
// over the slices, while leaving the per-slice set index (and therefore
// page-colour arithmetic) intact.
std::size_t SliceHash(std::uint64_t line_addr, std::size_t num_slices) {
  if (num_slices <= 1) {
    return 0;
  }
  std::uint64_t h = line_addr * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  h *= 0xD6E8FEB86659FD93ull;
  h ^= h >> 32;
  return static_cast<std::size_t>(h % num_slices);
}

}  // namespace

namespace {

// log2 for exact powers of two; -1 otherwise.
int Log2Exact(std::uint64_t v) {
  if (v == 0 || (v & (v - 1)) != 0) {
    return -1;
  }
  int shift = 0;
  while ((v >> shift) != 1) {
    ++shift;
  }
  return shift;
}

}  // namespace

SetAssociativeCache::SetAssociativeCache(std::string name, const CacheGeometry& geometry,
                                         Indexing indexing)
    : name_(std::move(name)), geometry_(geometry), indexing_(indexing) {
  assert(geometry_.size_bytes % (geometry_.line_size * geometry_.associativity *
                                 geometry_.num_slices) ==
         0);
  sets_per_slice_ = geometry_.SetsPerSlice();
  lines_.resize(geometry_.TotalLines());
  line_shift_ = Log2Exact(geometry_.line_size);
  if (sets_per_slice_ > 0 && (sets_per_slice_ & (sets_per_slice_ - 1)) == 0) {
    set_mask_ = sets_per_slice_ - 1;
  }
}

std::size_t SetAssociativeCache::SliceOf(PAddr paddr) const {
  return SliceHash(LineOf(paddr), geometry_.num_slices);
}

std::size_t SetAssociativeCache::SetBase(VAddr addr_for_index, PAddr addr_for_tag) const {
  std::uint64_t index_addr = indexing_ == Indexing::kVirtual ? addr_for_index : addr_for_tag;
  std::size_t slice = SliceOf(addr_for_tag);
  std::size_t set = SetIndexOf(index_addr);
  return (slice * sets_per_slice_ + set) * geometry_.associativity;
}

SetAssociativeCache::Decoded SetAssociativeCache::Decode(VAddr addr_for_index,
                                                         PAddr addr_for_tag) const {
  std::uint64_t tag = LineOf(addr_for_tag);
  std::size_t set;
  if (indexing_ == Indexing::kPhysical) {
    // Physical indexing shares the tag's line decode.
    set = set_mask_ != 0 && line_shift_ >= 0
              ? static_cast<std::size_t>(tag & set_mask_)
              : static_cast<std::size_t>(tag % sets_per_slice_);
  } else {
    set = SetIndexOf(addr_for_index);
  }
  std::size_t slice =
      geometry_.num_slices > 1 ? SliceHash(tag, geometry_.num_slices) : 0;
  return Decoded{(slice * sets_per_slice_ + set) * geometry_.associativity, tag};
}

AccessResult SetAssociativeCache::Access(VAddr addr_for_index, PAddr addr_for_tag, bool write) {
  const auto [base, tag] = Decode(addr_for_index, addr_for_tag);
  AccessResult result;

  std::size_t victim = base;
  std::uint64_t victim_lru = ~std::uint64_t{0};
  for (std::size_t way = 0; way < geometry_.associativity; ++way) {
    Line& line = lines_[base + way];
    if (line.valid && line.tag == tag) {
      line.lru = ++lru_clock_;
      line.dirty = line.dirty || write;
      ++hits_;
      result.hit = true;
      return result;
    }
    if (!line.valid) {
      victim = base + way;
      victim_lru = 0;
    } else if (line.lru < victim_lru) {
      victim = base + way;
      victim_lru = line.lru;
    }
  }

  ++misses_;
  Line& line = lines_[victim];
  if (line.valid) {
    result.evicted_valid = true;
    result.evicted_line_addr = line.tag;
    if (line.dirty) {
      result.writeback = true;
      ++writebacks_;
    }
  }
  line.tag = tag;
  line.valid = true;
  line.dirty = write;
  line.lru = ++lru_clock_;
  result.fill = true;
  return result;
}

bool SetAssociativeCache::Insert(VAddr addr_for_index, PAddr addr_for_tag, bool dirty) {
  const auto [base, tag] = Decode(addr_for_index, addr_for_tag);
  std::size_t victim = base;
  std::uint64_t victim_lru = ~std::uint64_t{0};
  for (std::size_t way = 0; way < geometry_.associativity; ++way) {
    Line& line = lines_[base + way];
    if (line.valid && line.tag == tag) {
      line.dirty = line.dirty || dirty;
      return false;  // already present
    }
    if (!line.valid) {
      victim = base + way;
      victim_lru = 0;
    } else if (line.lru < victim_lru) {
      victim = base + way;
      victim_lru = line.lru;
    }
  }
  Line& line = lines_[victim];
  bool evicted_dirty = line.valid && line.dirty;
  if (evicted_dirty) {
    ++writebacks_;
  }
  line.tag = tag;
  line.valid = true;
  line.dirty = dirty;
  line.lru = ++lru_clock_;
  return evicted_dirty;
}

bool SetAssociativeCache::Contains(VAddr addr_for_index, PAddr addr_for_tag) const {
  std::size_t base = SetBase(addr_for_index, addr_for_tag);
  std::uint64_t tag = TagOf(addr_for_tag);
  for (std::size_t way = 0; way < geometry_.associativity; ++way) {
    const Line& line = lines_[base + way];
    if (line.valid && line.tag == tag) {
      return true;
    }
  }
  return false;
}

bool SetAssociativeCache::InvalidateLine(VAddr addr_for_index, PAddr addr_for_tag) {
  std::size_t base = SetBase(addr_for_index, addr_for_tag);
  std::uint64_t tag = TagOf(addr_for_tag);
  for (std::size_t way = 0; way < geometry_.associativity; ++way) {
    Line& line = lines_[base + way];
    if (line.valid && line.tag == tag) {
      bool was_dirty = line.dirty;
      line.valid = false;
      line.dirty = false;
      return was_dirty;
    }
  }
  return false;
}

bool SetAssociativeCache::InvalidateLineByPaddr(PAddr paddr) {
  if (indexing_ == Indexing::kPhysical) {
    return InvalidateLine(paddr, paddr);
  }
  // Virtually-indexed: index bits above the page offset are unknown; probe
  // every alias candidate.
  std::size_t span = geometry_.WaySpanBytes();
  std::size_t variants = span > kPageSize ? span / kPageSize : 1;
  bool any_dirty = false;
  for (std::size_t k = 0; k < variants; ++k) {
    VAddr candidate = (paddr & kPageOffsetMask) | (static_cast<VAddr>(k) << kPageBits);
    any_dirty = InvalidateLine(candidate, paddr) || any_dirty;
  }
  return any_dirty;
}

std::size_t SetAssociativeCache::FlushAll() {
  std::size_t dirty = 0;
  for (Line& line : lines_) {
    if (line.valid && line.dirty) {
      ++dirty;
    }
    line.valid = false;
    line.dirty = false;
  }
  writebacks_ += dirty;
  return dirty;
}

std::size_t SetAssociativeCache::InvalidateAll() {
  std::size_t valid = 0;
  for (Line& line : lines_) {
    if (line.valid) {
      ++valid;
    }
    line.valid = false;
    line.dirty = false;
  }
  return valid;
}

std::size_t SetAssociativeCache::DirtyLineCount() const {
  std::size_t n = 0;
  for (const Line& line : lines_) {
    if (line.valid && line.dirty) {
      ++n;
    }
  }
  return n;
}

std::size_t SetAssociativeCache::ValidLineCount() const {
  std::size_t n = 0;
  for (const Line& line : lines_) {
    if (line.valid) {
      ++n;
    }
  }
  return n;
}

void SetAssociativeCache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

}  // namespace tp::hw
