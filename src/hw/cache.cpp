#include "hw/cache.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "hw/digest.hpp"

namespace tp::hw {

std::string CacheGeometry::Validate() const {
  if (line_size == 0) {
    return "line_size must be nonzero";
  }
  // The per-set valid/dirty bitmasks pack one bit per way into a 64-bit
  // word; a wider geometry must fail loudly (release builds included), not
  // silently wrap the masks.
  if (associativity < 1 || associativity > 64) {
    return "associativity must be 1..64";
  }
  if (num_slices == 0) {
    return "num_slices must be nonzero";
  }
  if (size_bytes == 0 || size_bytes % line_size != 0) {
    return "size_bytes must be a nonzero multiple of line_size";
  }
  const std::size_t lines = size_bytes / line_size;
  if (num_slices > lines || lines % num_slices != 0 ||
      (lines / num_slices) % associativity != 0) {
    return "size_bytes must hold a whole number of sets per slice "
           "(line_size * associativity * num_slices must divide it)";
  }
  return "";
}

SetAssociativeCache::SetAssociativeCache(std::string name, const CacheGeometry& geometry,
                                         Indexing indexing)
    : name_(std::move(name)), geometry_(geometry), indexing_(indexing) {
  if (std::string err = geometry_.Validate(); !err.empty()) {
    throw std::invalid_argument("SetAssociativeCache " + name_ + ": " + err);
  }
  sets_per_slice_ = geometry_.SetsPerSlice();
  num_slices_ = geometry_.num_slices;
  ways_ = geometry_.associativity;
  if (std::has_single_bit(geometry_.line_size)) {
    line_shift_ = std::countr_zero(geometry_.line_size);
  }
  if (sets_per_slice_ > 0 && std::has_single_bit(sets_per_slice_)) {
    set_mask_ = sets_per_slice_ - 1;
  }
  if (num_slices_ > 1 && std::has_single_bit(num_slices_)) {
    slice_mask_ = num_slices_ - 1;
  }
  full_mask_ = ways_ == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << ways_) - 1;

  const std::size_t lines = geometry_.TotalLines();
  const std::size_t sets = sets_per_slice_ * num_slices_;
  tags_.resize(lines);
  age_stride_ = LruStride(ways_);
  ages_.assign(sets * age_stride_, kLruPad);
  for (std::size_t set = 0; set < sets; ++set) {
    for (std::size_t w = 0; w < ways_; ++w) {
      ages_[set * age_stride_ + w] = static_cast<std::uint8_t>(w);
    }
  }
  sigs_.assign(sets * age_stride_, 0);
  valid_.assign(sets, 0);
  dirty_.assign(sets, 0);

  if (TaintTrackingEnabled()) {
    const std::size_t colours = geometry_.Colours();
    taint_colours_ = colours >= 1 && colours <= 64 ? colours : 1;
    taint_.Enable(lines, taint_colours_);
  }
}

AccessRunResult SetAssociativeCache::AccessRun(VAddr base_for_index, PAddr base_for_tag,
                                               std::size_t count, std::size_t stride_bytes,
                                               bool write) {
  AccessRunResult run;
  for (std::size_t i = 0; i < count; ++i) {
    const AccessResult r =
        Access(base_for_index + i * stride_bytes, base_for_tag + i * stride_bytes, write);
    run.hits += r.hit ? 1 : 0;
    run.misses += r.hit ? 0 : 1;
    run.writebacks += r.writeback ? 1 : 0;
  }
  return run;
}

bool SetAssociativeCache::Insert(VAddr addr_for_index, PAddr addr_for_tag, bool dirty) {
  const Decoded d = Decode(addr_for_index, addr_for_tag);
  if (int way = FindWay(d.set, d.tag); way >= 0) {
    // Already present: merge the dirty flag without an LRU touch (prefetch
    // fills never promoted under the previous replacement state either).
    if (dirty) {
      SetDirty(d.set, static_cast<unsigned>(way));
    }
    if (taint_.on()) {
      taint_.Tag(d.set * ways_ + static_cast<unsigned>(way), taint_owner_,
                 TaintColourOfTag(d.tag));
    }
    return false;
  }
  const unsigned victim = PickVictim(d.set);
  const std::uint64_t bit = std::uint64_t{1} << victim;
  const bool evicted_dirty = (valid_[d.set] & bit) != 0 && (dirty_[d.set] & bit) != 0;
  if (evicted_dirty) {
    ++writebacks_;
    dirty_[d.set] &= ~bit;
    --dirty_count_;
  }
  if ((valid_[d.set] & bit) == 0) {
    valid_[d.set] |= bit;
    ++valid_count_;
  }
  tags_[d.set * ways_ + victim] = d.tag;
  sigs_[d.set * age_stride_ + victim] = TagSignature(d.tag);
  if (dirty) {
    SetDirty(d.set, victim);
  }
  Promote(d.set, victim);
  if (taint_.on()) {
    taint_.Tag(d.set * ways_ + victim, taint_owner_, TaintColourOfTag(d.tag));
  }
  return evicted_dirty;
}

bool SetAssociativeCache::InvalidateLine(VAddr addr_for_index, PAddr addr_for_tag) {
  const Decoded d = Decode(addr_for_index, addr_for_tag);
  const int way = FindWay(d.set, d.tag);
  if (way < 0) {
    return false;
  }
  const std::uint64_t bit = std::uint64_t{1} << static_cast<unsigned>(way);
  const bool was_dirty = (dirty_[d.set] & bit) != 0;
  valid_[d.set] &= ~bit;
  --valid_count_;
  if (was_dirty) {
    dirty_[d.set] &= ~bit;
    --dirty_count_;
  }
  if (taint_.on()) {
    taint_.Clear(d.set * ways_ + static_cast<unsigned>(way));
  }
  return was_dirty;
}

bool SetAssociativeCache::InvalidateLineByPaddr(PAddr paddr) {
  if (indexing_ == Indexing::kPhysical) {
    return InvalidateLine(paddr, paddr);
  }
  // Virtually-indexed: index bits above the page offset are unknown; probe
  // every alias candidate.
  std::size_t span = geometry_.WaySpanBytes();
  std::size_t variants = span > kPageSize ? span / kPageSize : 1;
  bool any_dirty = false;
  for (std::size_t k = 0; k < variants; ++k) {
    VAddr candidate = (paddr & kPageOffsetMask) | (static_cast<VAddr>(k) << kPageBits);
    any_dirty = InvalidateLine(candidate, paddr) || any_dirty;
  }
  return any_dirty;
}

std::size_t SetAssociativeCache::FlushAll() {
  const std::size_t dirty = dirty_count_;
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  valid_count_ = 0;
  dirty_count_ = 0;
  writebacks_ += dirty;
  if (taint_.on()) {
    taint_.ClearAll();
  }
  return dirty;
}

std::size_t SetAssociativeCache::InvalidateAll() {
  const std::size_t valid = valid_count_;
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  valid_count_ = 0;
  dirty_count_ = 0;
  if (taint_.on()) {
    taint_.ClearAll();
  }
  return valid;
}

void SetAssociativeCache::DigestState(std::uint64_t& h) const {
  DigestVec(h, tags_);
  DigestVec(h, ages_);
  DigestVec(h, valid_);
  DigestVec(h, dirty_);
  taint_.DigestState(h);
}

void SetAssociativeCache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

}  // namespace tp::hw
