// Hardware stream-prefetcher state machine.
//
// This is the piece of hidden microarchitectural state the paper could *not*
// scrub on Haswell (§5.3.2): stream-detector slots are trained by demand
// misses and persist across every architected flush. After a domain switch,
// streams trained by the previous domain keep issuing prefetches, contending
// for memory bandwidth with the new domain's misses — a residual timing
// channel (Table 3: 50.5 mb with the prefetcher on, 6.4 mb with the data
// prefetcher disabled via MSR 0x1A4, the remainder being the instruction
// prefetcher, which cannot be disabled at all).
//
// The model: a table of stream slots {next line, direction, confidence,
// credits, owner}. Demand misses train streams; confident streams issue
// prefetch fills. On each miss, stale streams (owner != current domain tag)
// with remaining credits issue one prefetch each and add bandwidth
// interference cycles to the miss. Data slots can be disabled/reset (the MSR
// write); instruction slots cannot.
#ifndef TP_HW_PREFETCHER_HPP_
#define TP_HW_PREFETCHER_HPP_

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace tp::hw {

struct PrefetcherGeometry {
  std::size_t data_slots = 16;
  std::size_t instruction_slots = 2;
  int confidence_threshold = 2;
  int prefetch_degree = 2;        // lines fetched ahead once confident
  int credits_on_train = 4;       // prefetches a stream may issue unprompted
  Cycles interference_cycles = 6;  // added to a miss per stale-stream issue
  std::size_t max_stale_issues_per_miss = 2;
  // Streams track within one page and die at its boundary: physical
  // contiguity is not guaranteed past a page, so hardware streamers never
  // cross one — and a prefetch that did would punch through the colouring
  // partition into a neighbouring domain's frame.
  std::size_t lines_per_page = kPageSize / 64;

  // "" when buildable, else the reason (the constructor throws
  // std::invalid_argument on the same bounds; see CacheGeometry::Validate).
  std::string Validate() const;
};

// Per-miss prefetch fill list. A miss issues at most
// max_stale_issues_per_miss + prefetch_degree fills, so the storage is a
// small inline array — OnDemandMiss sits on the demand-miss hot path and
// must not allocate.
class PrefetchFillList {
 public:
  static constexpr std::size_t kCapacity = 8;

  // `owner` is the *taint* owner of the fill: the stream's taint owner for
  // stale-stream issues (the previous domain keeps prefetching, §5.3.2),
  // the training access's taint owner for degree fills. Streams trained by
  // taint-neutral accesses (the deterministic kernel tick sequence) carry
  // taint owner 0 even though their behaviour owner is the domain tag. Only
  // consulted by taint tracking; fills behave identically either way.
  void push_back(std::uint64_t line, std::uint16_t owner = 0) {
    assert(count_ < kCapacity);
    owners_[count_] = owner;
    lines_[count_++] = line;
  }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::uint64_t front() const { return lines_[0]; }
  std::uint64_t operator[](std::size_t i) const { return lines_[i]; }
  std::uint16_t owner(std::size_t i) const { return owners_[i]; }
  const std::uint64_t* begin() const { return lines_.data(); }
  const std::uint64_t* end() const { return lines_.data() + count_; }

 private:
  std::array<std::uint64_t, kCapacity> lines_{};
  std::array<std::uint16_t, kCapacity> owners_{};
  std::size_t count_ = 0;
};

struct PrefetchOutcome {
  // Lines (physical line addresses, i.e. paddr / line_size) to insert into
  // the cache below L1 as prefetch fills.
  PrefetchFillList fills;
  Cycles interference = 0;  // extra latency from stale-stream bandwidth use
};

class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const PrefetcherGeometry& geometry);

  // Called on every demand miss at physical line address `line`
  // (paddr / line_size). `owner` tags the training domain (the kernel passes
  // the current kernel-image id or ASID) and drives the stale-stream
  // behaviour; `taint_owner` is stamped on the fills this training produces.
  // They differ only during the taint-neutral kernel tick sequence: the
  // schedule-driven accesses train real streams (simulated behaviour must
  // not change with taint mode), but the state those streams leave behind
  // is deterministic and carries no domain secret, so it is stamped 0.
  PrefetchOutcome OnDemandMiss(std::uint64_t line, std::uint16_t owner, bool instruction,
                               std::uint16_t taint_owner);
  PrefetchOutcome OnDemandMiss(std::uint64_t line, std::uint16_t owner, bool instruction) {
    return OnDemandMiss(line, owner, instruction, owner);
  }

  // MSR-style control: disabling the *data* prefetcher also clears its
  // slots. The instruction slots are untouched (not architected).
  void SetDataPrefetcherEnabled(bool enabled);
  bool data_prefetcher_enabled() const { return data_enabled_; }

  std::size_t ActiveDataStreams() const;
  std::size_t ActiveInstructionStreams() const;
  // Streams whose owner differs from `owner` and that still hold credits.
  // The data/instruction split matters to the contract checker: under a
  // full-flush configuration the data prefetcher is supposed to be off, so
  // a stale *data* stream is a violation there, not §5.3.2 residue.
  std::size_t StaleStreams(std::uint16_t owner) const;
  std::size_t StaleDataStreams(std::uint16_t owner) const;
  std::size_t StaleInstructionStreams(std::uint16_t owner) const;

  const PrefetcherGeometry& geometry() const { return geometry_; }

  // Folds every stream slot plus the round-robin victim cursors and the
  // MSR enable bit into a batch-replay state digest (field by field — the
  // slot struct has padding the digest must not read).
  void DigestState(std::uint64_t& h) const;
  std::size_t DigestSizeBytes() const {
    return (data_slots_.size() + instruction_slots_.size()) * 32 + 24;
  }

 private:
  struct Stream {
    std::uint64_t next_line = 0;
    std::int64_t direction = 1;
    int confidence = 0;
    int credits = 0;
    std::uint16_t owner = 0;        // behaviour: stale-stream detection
    std::uint16_t taint_owner = 0;  // taint stamp on the fills it issues
    bool valid = false;
  };

  std::uint64_t PageOf(std::uint64_t line) const;

  PrefetchOutcome HandleMiss(std::vector<Stream>& slots, std::uint64_t line,
                             std::uint16_t owner, std::uint16_t taint_owner, bool enabled);

  PrefetcherGeometry geometry_;
  std::vector<Stream> data_slots_;
  std::vector<Stream> instruction_slots_;
  std::size_t data_victim_rr_ = 0;
  std::size_t instr_victim_rr_ = 0;
  bool data_enabled_ = true;
};

}  // namespace tp::hw

#endif  // TP_HW_PREFETCHER_HPP_
