#include "hw/taint.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "hw/digest.hpp"

namespace tp::hw {

namespace {

// -1 = not overridden (read TP_TAINT), else 0/1.
int g_taint_override = -1;

bool TaintEnv() {
  static const bool kEnv = [] {
    const char* q = std::getenv("TP_TAINT");
    return q != nullptr && q[0] != '\0' && q[0] != '0';
  }();
  return kEnv;
}

}  // namespace

bool TaintTrackingEnabled() {
  return g_taint_override >= 0 ? g_taint_override != 0 : TaintEnv();
}

void SetTaintTrackingEnabled(bool enabled) { g_taint_override = enabled ? 1 : 0; }

std::string ToString(const TaintViolation& v) {
  return v.structure + " " + v.where + ": domain " + std::to_string(v.residual_owner) +
         " residue visible to incoming domain " + std::to_string(v.incoming) + " at switch " +
         std::to_string(v.switch_index);
}

void ContractTally::Merge(const ContractTally& other) {
  switches += other.switches;
  dirty_switches += other.dirty_switches;
  violations += other.violations;
  whitelisted += other.whitelisted;
  if (!has_first && other.has_first) {
    has_first = true;
    first = other.first;
  }
}

ContractTally& ThreadContractTally() {
  thread_local ContractTally tally;
  return tally;
}

ContractCapture::ContractCapture() : saved_(ThreadContractTally()) {
  ThreadContractTally() = ContractTally{};
}

ContractCapture::~ContractCapture() {
  ContractTally captured = ThreadContractTally();
  ThreadContractTally() = saved_;
  ThreadContractTally().Merge(captured);
}

void TaintMap::Enable(std::size_t entries, std::size_t colours) {
  assert(colours >= 1 && colours <= 64);
  meta_.assign(entries, 0);
  colours_ = colours;
}

TaintMap::OwnerCount& TaintMap::Slot(TaintTag owner) {
  for (OwnerCount& c : counts_) {
    if (c.owner == owner) {
      return c;
    }
  }
  counts_.push_back(OwnerCount{owner, 0, std::vector<std::uint64_t>(colours_, 0)});
  return counts_.back();
}

void TaintMap::TagSlow(std::size_t index, std::uint32_t meta, std::uint32_t old) {
  const TaintTag old_owner = static_cast<TaintTag>(old & 0xFFFF);
  if (old_owner != 0) {
    OwnerCount& c = Slot(old_owner);
    --c.total;
    --c.per_colour[old >> 16];
  }
  meta_[index] = meta;
  const TaintTag owner = static_cast<TaintTag>(meta & 0xFFFF);
  if (owner != 0) {
    OwnerCount& c = Slot(owner);
    ++c.total;
    ++c.per_colour[meta >> 16];
  }
}

void TaintMap::DigestState(std::uint64_t& h) const { DigestVec(h, meta_); }

void TaintMap::ClearAll() {
  std::fill(meta_.begin(), meta_.end(), 0);
  counts_.clear();
}

std::uint64_t TaintMap::ForeignCount(TaintTag incoming, std::uint64_t colour_mask) const {
  std::uint64_t n = 0;
  for (const OwnerCount& c : counts_) {
    if (c.owner == 0 || c.owner == incoming || c.total == 0) {
      continue;
    }
    for (std::size_t col = 0; col < colours_; ++col) {
      if ((colour_mask >> col) & 1) {
        n += c.per_colour[col];
      }
    }
  }
  return n;
}

std::size_t TaintMap::FindForeign(TaintTag incoming, std::uint64_t colour_mask) const {
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    TaintTag o = static_cast<TaintTag>(meta_[i] & 0xFFFF);
    if (o != 0 && o != incoming && (((colour_mask >> (meta_[i] >> 16)) & 1) != 0)) {
      return i;
    }
  }
  return npos;
}

}  // namespace tp::hw
