// One-shot deadline timers. Each core has a preemption timer owned by the
// kernel; additional device timers (user-programmable via IRQ_Handler +
// timer caps) model the interrupt-channel Trojan of paper §5.3.5.
#ifndef TP_HW_TIMER_HPP_
#define TP_HW_TIMER_HPP_

#include <cstdint>

#include "hw/types.hpp"

namespace tp::hw {

class OneShotTimer {
 public:
  explicit OneShotTimer(IrqLine irq_line = 0) : irq_line_(irq_line) {}

  void SetDeadline(Cycles absolute_deadline) {
    deadline_ = absolute_deadline;
    armed_ = true;
  }
  void Clear() { armed_ = false; }

  bool Expired(Cycles now) const { return armed_ && now >= deadline_; }
  bool armed() const { return armed_; }
  Cycles deadline() const { return deadline_; }
  IrqLine irq_line() const { return irq_line_; }

 private:
  Cycles deadline_ = 0;
  IrqLine irq_line_ = 0;
  bool armed_ = false;
};

}  // namespace tp::hw

#endif  // TP_HW_TIMER_HPP_
