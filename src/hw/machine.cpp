#include "hw/machine.hpp"

#include "hw/digest.hpp"

namespace tp::hw {

MachineConfig MachineConfig::Haswell(std::size_t cores) {
  MachineConfig c;
  c.name = "Haswell (x86)";
  c.arch = Arch::kX86;
  c.clock_ghz = 3.4;
  c.num_cores = cores;

  // Table 1: 64 B lines; L1 32 KiB 8-way; L2 256 KiB 8-way; L3 8 MiB 16-way.
  c.l1i = CacheGeometry{.size_bytes = 32 * 1024, .line_size = 64, .associativity = 8};
  c.l1d = CacheGeometry{.size_bytes = 32 * 1024, .line_size = 64, .associativity = 8};
  c.has_private_l2 = true;
  c.l2 = CacheGeometry{.size_bytes = 256 * 1024, .line_size = 64, .associativity = 8};
  // Distributed LLC: one slice per core; slicing raises usable colours to 32
  // (Yarom et al. 2015), matching §6.1's "32 vs 8 colours on our Haswell".
  c.llc = CacheGeometry{
      .size_bytes = 8 * 1024 * 1024, .line_size = 64, .associativity = 16, .num_slices = 4};

  // Table 1: I-TLB 64/8-way, D-TLB 64/4-way, L2-TLB 1024/8-way.
  c.itlb = TlbGeometry{.entries = 64, .associativity = 8};
  c.dtlb = TlbGeometry{.entries = 64, .associativity = 4};
  c.l2tlb = TlbGeometry{.entries = 1024, .associativity = 8};

  c.bp = BranchPredictorGeometry{.btb_entries = 4096,
                                 .btb_associativity = 4,
                                 .pht_entries = 16384,
                                 .history_bits = 16,
                                 .mispredict_penalty = 15};
  c.prefetcher = PrefetcherGeometry{.data_slots = 16,
                                    .instruction_slots = 2,
                                    .confidence_threshold = 2,
                                    .prefetch_degree = 2,
                                    .credits_on_train = 4,
                                    .interference_cycles = 6,
                                    .max_stale_issues_per_miss = 2};
  c.lat = Latencies{.base_op = 1,
                    .l1_hit = 4,
                    .l2_hit = 12,
                    .llc_hit = 40,
                    .dram = 200,
                    .dram_stream = 50,
                    .writeback = 2,
                    .l2_tlb_hit = 8,
                    .flush_per_line = 6,
                    .flush_dirty_extra = 10,
                    .tlb_flush = 100,
                    .bp_flush = 200};

  c.irq_arch = IrqArch::kX86Hierarchical;
  c.ram_bytes = std::uint64_t{16} * 1024 * 1024 * 1024;
  c.has_architected_l1_flush = false;
  return c;
}

MachineConfig MachineConfig::Sabre(std::size_t cores) {
  MachineConfig c;
  c.name = "Sabre (Arm v7)";
  c.arch = Arch::kArm;
  c.clock_ghz = 0.8;
  c.num_cores = cores;

  // Table 1: 32 B lines; L1 32 KiB 4-way; shared L2 1 MiB 16-way; no L3.
  c.l1i = CacheGeometry{.size_bytes = 32 * 1024, .line_size = 32, .associativity = 4};
  c.l1d = CacheGeometry{.size_bytes = 32 * 1024, .line_size = 32, .associativity = 4};
  c.has_private_l2 = false;
  c.llc = CacheGeometry{
      .size_bytes = 1024 * 1024, .line_size = 32, .associativity = 16, .num_slices = 1};

  // Table 1: I-TLB 32/1-way, D-TLB 32/1-way, L2-TLB 128/2-way. The 2-way
  // L2 TLB is what makes non-global kernel mappings expensive (Table 5).
  c.itlb = TlbGeometry{.entries = 32, .associativity = 1};
  c.dtlb = TlbGeometry{.entries = 32, .associativity = 1};
  c.l2tlb = TlbGeometry{.entries = 128, .associativity = 2};

  c.bp = BranchPredictorGeometry{.btb_entries = 512,
                                 .btb_associativity = 2,
                                 .pht_entries = 4096,
                                 .history_bits = 8,
                                 .mispredict_penalty = 8};
  // Cortex A9's prefetcher is conservative and is disabled with the BP in
  // the full-flush scenario; the paper observes no residual Arm channel, so
  // the model gives it no cross-domain stream retention.
  c.prefetcher = PrefetcherGeometry{.data_slots = 0,
                                    .instruction_slots = 0,
                                    .confidence_threshold = 2,
                                    .prefetch_degree = 0,
                                    .credits_on_train = 0,
                                    .interference_cycles = 0,
                                    .max_stale_issues_per_miss = 0};
  c.lat = Latencies{.base_op = 1,
                    .l1_hit = 4,
                    .l2_hit = 8,  // unused (no private L2)
                    .llc_hit = 25,
                    .dram = 150,
                    .dram_stream = 35,
                    .writeback = 2,
                    .l2_tlb_hit = 6,
                    .flush_per_line = 6,
                    .flush_dirty_extra = 10,
                    .tlb_flush = 80,
                    .bp_flush = 120};

  c.irq_arch = IrqArch::kArmSimple;
  c.ram_bytes = std::uint64_t{1} * 1024 * 1024 * 1024;
  c.has_architected_l1_flush = true;
  return c;
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      llc_(std::make_unique<SetAssociativeCache>("LLC", config.llc, Indexing::kPhysical)),
      irqc_(config.irq_arch, config.irq_lines) {
  for (std::size_t i = 0; i < config_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(static_cast<CoreId>(i), this));
  }
  device_timers_.reserve(config_.device_timers);
  for (std::size_t i = 0; i < config_.device_timers; ++i) {
    // Device timer i raises IRQ line i+1 (line 0 is reserved).
    device_timers_.emplace_back(static_cast<IrqLine>(i + 1));
  }
}

void Machine::PollDeviceTimers(Cycles now) {
  for (OneShotTimer& t : device_timers_) {
    if (t.Expired(now)) {
      irqc_.Raise(t.irq_line());
      t.Clear();
    }
  }
}

std::uint64_t Machine::StateDigest() const {
  std::uint64_t h = kDigestSeed;
  llc_->DigestState(h);
  for (const auto& core : cores_) {
    core->DigestState(h);
  }
  return h;
}

std::uint64_t Machine::ScopedDigest(std::uint32_t scope, std::size_t core) {
  for (const ScopedDigestCacheEntry& e : digest_cache_) {
    if (e.gen == state_gen_ && e.scope == scope && e.core == core) {
      return e.digest;
    }
  }
  const std::uint64_t h = ScopedDigestUncached(scope, core);
  digest_cache_[digest_cache_next_] =
      ScopedDigestCacheEntry{state_gen_, scope, core, h};
  digest_cache_next_ = (digest_cache_next_ + 1) % std::size(digest_cache_);
  return h;
}

std::uint64_t Machine::ScopedDigestUncached(std::uint32_t scope, std::size_t core) const {
  std::uint64_t h = kDigestSeed;
  DigestWord(h, scope);
  if ((scope & kScopeLlc) != 0) {
    llc_->DigestState(h);
  }
  cores_[core]->DigestScoped(h, scope);
  if ((scope & kScopeXCores) != 0) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (i != core) {
        cores_[i]->DigestPrivateCaches(h);
      }
    }
  }
  return h;
}

std::size_t Machine::ScopedDigestBytes(std::uint32_t scope, std::size_t core) const {
  std::size_t bytes = (scope & kScopeLlc) != 0 ? llc_->DigestSizeBytes() : 0;
  bytes += cores_[core]->DigestBytesScoped(scope);
  if ((scope & kScopeXCores) != 0) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (i != core) {
        bytes += cores_[i]->DigestBytesScoped(kScopeL1I | kScopeL1D | kScopeL2);
      }
    }
  }
  return bytes;
}

void Machine::BackInvalidateLine(PAddr line_paddr) {
  ++back_invalidate_count_;
  for (std::unique_ptr<Core>& core : cores_) {
    core->BackInvalidateLine(line_paddr);
  }
}

}  // namespace tp::hw
