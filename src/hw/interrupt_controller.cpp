#include "hw/interrupt_controller.hpp"

namespace tp::hw {

InterruptController::InterruptController(IrqArch arch, std::size_t num_lines) : arch_(arch) {
  lines_.resize(num_lines);
}

void InterruptController::Raise(IrqLine line) {
  Line& l = lines_.at(line);
  l.raised = true;
  if (arch_ == IrqArch::kX86Hierarchical && !l.masked) {
    // Accepted by the CPU: survives subsequent masking of the source.
    l.accepted = true;
  }
}

void InterruptController::Mask(IrqLine line) { lines_.at(line).masked = true; }

void InterruptController::Unmask(IrqLine line) {
  Line& l = lines_.at(line);
  l.masked = false;
  if (arch_ == IrqArch::kX86Hierarchical && l.raised) {
    l.accepted = true;
  }
}

void InterruptController::MaskAll() {
  for (Line& l : lines_) {
    l.masked = true;
  }
}

std::optional<IrqLine> InterruptController::PendingDeliverable() const {
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const Line& l = lines_[i];
    if (arch_ == IrqArch::kX86Hierarchical) {
      if (l.accepted || (l.raised && !l.masked)) {
        return static_cast<IrqLine>(i);
      }
    } else {
      if (l.raised && !l.masked) {
        return static_cast<IrqLine>(i);
      }
    }
  }
  return std::nullopt;
}

std::size_t InterruptController::ProbeAndAckAccepted() {
  if (arch_ != IrqArch::kX86Hierarchical) {
    return 0;
  }
  std::size_t n = 0;
  for (Line& l : lines_) {
    if (l.accepted && l.masked) {
      // Drop the CPU-side acceptance; the source stays raised and will be
      // delivered once its owning domain unmasks the line again.
      l.accepted = false;
      ++n;
    }
  }
  return n;
}

void InterruptController::Ack(IrqLine line) {
  Line& l = lines_.at(line);
  l.raised = false;
  l.accepted = false;
}

}  // namespace tp::hw
