#include "hw/interrupt_controller.hpp"

#include <algorithm>

namespace tp::hw {

InterruptController::InterruptController(IrqArch arch, std::size_t num_lines)
    : arch_(arch), num_lines_(num_lines) {
  const std::size_t words = (num_lines + 63) / 64;
  raised_.assign(words, 0);
  masked_.assign(words, ~std::uint64_t{0});  // lines boot masked
  accepted_.assign(words, 0);
}

void InterruptController::Raise(IrqLine line) {
  Checked(line);
  Set(raised_, line);
  if (arch_ == IrqArch::kX86Hierarchical && !Test(masked_, line)) {
    // Accepted by the CPU: survives subsequent masking of the source.
    Set(accepted_, line);
  }
}

void InterruptController::Mask(IrqLine line) { Set(masked_, Checked(line)); }

void InterruptController::Unmask(IrqLine line) {
  Checked(line);
  Clear(masked_, line);
  if (arch_ == IrqArch::kX86Hierarchical && Test(raised_, line)) {
    Set(accepted_, line);
  }
}

void InterruptController::MaskAll() {
  std::fill(masked_.begin(), masked_.end(), ~std::uint64_t{0});
}

std::size_t InterruptController::ProbeAndAckAccepted() {
  if (arch_ != IrqArch::kX86Hierarchical) {
    return 0;
  }
  std::size_t n = 0;
  for (std::size_t w = 0; w < accepted_.size(); ++w) {
    // Drop the CPU-side acceptance of masked lines; the source stays raised
    // and will be delivered once its owning domain unmasks the line again.
    const std::uint64_t drained = accepted_[w] & masked_[w];
    accepted_[w] &= ~drained;
    n += static_cast<std::size_t>(std::popcount(drained));
  }
  return n;
}

void InterruptController::Ack(IrqLine line) {
  Checked(line);
  Clear(raised_, line);
  Clear(accepted_, line);
}

}  // namespace tp::hw
