// Word-wise FNV-1a folding over raw state arrays, used by the batch-replay
// memo (Core::AccessBatch) to prove a batch has reached its fixpoint: two
// consecutive live runs of the identical batch that end in the same machine
// digest end in the same machine *state*, so every later run from that
// state repeats the same work and can be elided.
//
// The digest deliberately covers only state that a batched memory access
// can read or write: cache tags/ages/valid/dirty and taint stamps, TLB
// entries, prefetcher streams, and the DRAM row-buffer memo. The branch
// predictor and interrupt fabric are outside — batches never touch them.
#ifndef TP_HW_DIGEST_HPP_
#define TP_HW_DIGEST_HPP_

#include <cstdint>
#include <cstring>
#include <vector>

namespace tp::hw {

inline constexpr std::uint64_t kDigestSeed = 1469598103934665603ull;

inline void DigestWord(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

// Folds `n` raw bytes eight at a time (tail zero-padded into a final word).
inline void DigestBytes(std::uint64_t& h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    DigestWord(h, word);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, n);
    DigestWord(h, word);
  }
}

template <typename T>
inline void DigestVec(std::uint64_t& h, const std::vector<T>& v) {
  DigestBytes(h, v.data(), v.size() * sizeof(T));
}

}  // namespace tp::hw

#endif  // TP_HW_DIGEST_HPP_
