#include "hw/branch_predictor.hpp"

#include <cassert>
#include <stdexcept>

namespace tp::hw {

std::string BranchPredictorGeometry::Validate() const {
  if (btb_associativity == 0) {
    return "btb_associativity must be nonzero";
  }
  if (btb_entries == 0 || btb_entries % btb_associativity != 0) {
    return "btb_entries must be a nonzero multiple of btb_associativity";
  }
  if (pht_entries == 0) {
    return "pht_entries must be nonzero";
  }
  // The history mask is built by shifting 1 << history_bits (PhtIndex).
  if (history_bits >= 64) {
    return "history_bits must be < 64";
  }
  return "";
}

BranchPredictor::BranchPredictor(const BranchPredictorGeometry& geometry) : geometry_(geometry) {
  if (std::string err = geometry_.Validate(); !err.empty()) {
    throw std::invalid_argument("BranchPredictor: " + err);
  }
  btb_.resize(geometry_.btb_entries);
  pht_.assign(geometry_.pht_entries, 1);  // weakly not-taken
  if (TaintTrackingEnabled()) {
    btb_taint_.Enable(geometry_.btb_entries, 1);
    pht_taint_.Enable(geometry_.pht_entries, 1);
  }
}

std::size_t BranchPredictor::BtbSetBase(VAddr pc) const {
  std::size_t sets = geometry_.btb_entries / geometry_.btb_associativity;
  // Branch instructions are rarely line-aligned; index on the instruction
  // address directly (low bits carry information, as in real BTBs).
  return ((pc >> 2) % sets) * geometry_.btb_associativity;
}

std::size_t BranchPredictor::PhtIndex(VAddr pc) const {
  std::uint64_t history_mask = (std::uint64_t{1} << geometry_.history_bits) - 1;
  return static_cast<std::size_t>(((pc >> 2) ^ (ghr_ & history_mask)) % geometry_.pht_entries);
}

BranchResult BranchPredictor::Branch(VAddr pc, VAddr target, bool taken, bool conditional) {
  ++branches_;
  BranchResult result;

  if (!enabled_) {
    result.mispredicted = true;
    result.penalty = geometry_.mispredict_penalty;
    ++mispredicts_;
    return result;
  }

  // Direction prediction via the PHT (conditional branches only).
  bool predicted_taken = true;
  if (conditional) {
    std::size_t idx = PhtIndex(pc);
    predicted_taken = pht_[idx] >= 2;
    // Update the 2-bit counter.
    if (taken && pht_[idx] < 3) {
      ++pht_[idx];
    } else if (!taken && pht_[idx] > 0) {
      --pht_[idx];
    }
    std::uint64_t history_mask = (std::uint64_t{1} << geometry_.history_bits) - 1;
    ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & history_mask;
    if (pht_taint_.on()) {
      pht_taint_.Tag(idx, taint_owner_, 0);
      ghr_owner_ = taint_owner_;
    }
  }

  // Target prediction via the BTB (only needed for taken branches).
  bool target_hit = false;
  std::size_t base = BtbSetBase(pc);
  std::uint64_t tag = pc >> 2;
  std::size_t victim = base;
  std::uint64_t victim_lru = ~std::uint64_t{0};
  for (std::size_t way = 0; way < geometry_.btb_associativity; ++way) {
    BtbEntry& e = btb_[base + way];
    if (e.valid && e.tag == tag) {
      target_hit = e.target == target;
      e.lru = ++lru_clock_;
      if (taken) {
        e.target = target;
      }
      if (btb_taint_.on()) {
        btb_taint_.Tag(base + way, taint_owner_, 0);
      }
      victim = static_cast<std::size_t>(-1);
      break;
    }
    if (!e.valid) {
      victim = base + way;
      victim_lru = 0;
    } else if (e.lru < victim_lru) {
      victim = base + way;
      victim_lru = e.lru;
    }
  }
  if (taken && victim != static_cast<std::size_t>(-1)) {
    BtbEntry& e = btb_[victim];
    e.tag = tag;
    e.target = target;
    e.valid = true;
    e.lru = ++lru_clock_;
    if (btb_taint_.on()) {
      btb_taint_.Tag(victim, taint_owner_, 0);
    }
  }

  bool direction_wrong = conditional && (predicted_taken != taken);
  bool target_wrong = taken && !target_hit;
  if (direction_wrong || target_wrong) {
    result.mispredicted = true;
    result.penalty = geometry_.mispredict_penalty;
    ++mispredicts_;
  }
  return result;
}

void BranchPredictor::FlushBtb() {
  for (BtbEntry& e : btb_) {
    e.valid = false;
  }
  if (btb_taint_.on()) {
    btb_taint_.ClearAll();
  }
}

void BranchPredictor::FlushHistory() {
  ghr_ = 0;
  pht_.assign(pht_.size(), 1);
  if (pht_taint_.on()) {
    pht_taint_.ClearAll();
    ghr_owner_ = 0;
  }
}

std::size_t BranchPredictor::BtbValidCount() const {
  std::size_t n = 0;
  for (const BtbEntry& e : btb_) {
    if (e.valid) {
      ++n;
    }
  }
  return n;
}

void BranchPredictor::ResetStats() {
  mispredicts_ = 0;
  branches_ = 0;
}

}  // namespace tp::hw
