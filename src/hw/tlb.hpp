// TLB model: set-associative translation cache with ASID tags and global
// mappings.
//
// Global entries match regardless of the current ASID and survive
// FlushNonGlobal(); the baseline (single-image) kernel maps its window
// global, while clone-capable kernels cannot (each kernel image has its own
// mapping). On a low-associativity L2 TLB this difference is exactly the
// Arm IPC slowdown of paper Table 5.
//
// Like SetAssociativeCache, storage is structure-of-arrays: contiguous
// vpn/asid arrays, packed per-set valid/global bitmasks, and per-entry
// 8-bit LRU age ranks reproducing the previous global-clock victim choice
// exactly. Lookup is the hot path and lives in the header so the core's
// translation fast path inlines it.
#ifndef TP_HW_TLB_HPP_
#define TP_HW_TLB_HPP_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/lru.hpp"
#include "hw/taint.hpp"
#include "hw/types.hpp"

namespace tp::hw {

struct TlbGeometry {
  std::size_t entries = 0;
  std::size_t associativity = 1;
  std::size_t Sets() const { return entries / associativity; }
  // "" when buildable, else the reason (the constructor throws
  // std::invalid_argument on the same bounds; see CacheGeometry::Validate).
  std::string Validate() const;
};

class Tlb {
 public:
  Tlb(std::string name, const TlbGeometry& geometry);

  // True on hit for (vpn, asid): an entry matches if its vpn equals and it
  // is either global or tagged with `asid`.
  bool Lookup(std::uint64_t vpn, Asid asid) {
    const std::size_t set = SetOf(vpn);
    const int way = FindEntry(set, vpn, asid);
    if (way >= 0) {
      Promote(set, static_cast<unsigned>(way));
      ++hits_;
      if (taint_.on()) {
        taint_.Tag(set * ways_ + static_cast<std::size_t>(way), taint_owner_, 0);
      }
      return true;
    }
    ++misses_;
    return false;
  }

  void Insert(std::uint64_t vpn, Asid asid, bool global);

  void FlushAll();          // e.g. Arm TLBIALL
  void FlushNonGlobal();    // e.g. x86 CR3 write without PCID
  void FlushAsid(Asid asid);  // e.g. invpcid single-context

  std::size_t ValidCount() const { return valid_count_; }
  const TlbGeometry& geometry() const { return geometry_; }
  const std::string& name() const { return name_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Batch-replay accounting (Core::AccessBatch): credits the stats an
  // elided fixpoint replay would have recorded (see cache.hpp).
  void AddReplayStats(std::uint64_t hits, std::uint64_t misses) {
    hits_ += hits;
    misses_ += misses;
  }
  void ResetStats();

  // Folds the behavioural state into a batch-replay digest (see cache.hpp).
  void DigestState(std::uint64_t& h) const;
  std::size_t DigestSizeBytes() const {
    return vpns_.size() * sizeof(std::uint64_t) + asids_.size() * sizeof(Asid) +
           ages_.size() + (valid_.size() + global_.size()) * sizeof(std::uint64_t) +
           taint_.DigestSizeBytes();
  }

  // Taint metadata (active only when tracking was enabled at construction);
  // TLBs are uncolourable, so every entry uses colour 0. Entry index is
  // set * ways + way.
  void SetTaintOwner(TaintTag owner) { taint_owner_ = owner; }
  const TaintMap& taint() const { return taint_; }
  std::size_t ways() const { return ways_; }

 private:
  // Set selection, shift/mask when the set count is a power of two (every
  // real geometry), modulo otherwise.
  std::size_t SetOf(std::uint64_t vpn) const {
    return set_mask_ != 0 ? static_cast<std::size_t>(vpn & set_mask_)
                          : static_cast<std::size_t>(vpn % sets_);
  }

  // 8-bit vpn signature per way (age-stride array), giving the lookup a
  // whole-set SWAR compare; see SetAssociativeCache::TagSignature.
  static std::uint8_t VpnSignature(std::uint64_t vpn) {
    return static_cast<std::uint8_t>((vpn * 0x9E3779B97F4A7C15ull) >> 56);
  }

  // Way whose entry matches (vpn, asid), or -1. Signature candidates are
  // visited in ascending way order and confirmed against the valid mask,
  // the full vpn, and the global/ASID rule, so the first confirmed way
  // equals the previous linear scan's choice exactly (per-ASID duplicates
  // of one vpn included).
  int FindEntry(std::size_t set, std::uint64_t vpn, Asid asid) const {
    const std::uint64_t valid = valid_[set];
    if (valid == 0) {
      return -1;
    }
    const std::size_t base = set * ways_;
    const std::uint64_t glob = global_[set];
    const std::uint8_t* sigs = sigs_.data() + set * age_stride_;
    const std::uint64_t broadcast = kSwarLo * VpnSignature(vpn);
    for (std::size_t off = 0; off < age_stride_; off += 8) {
      std::uint64_t word;
      std::memcpy(&word, sigs + off, 8);
      std::uint64_t match = SwarByteMatch(word, broadcast);
      while (match != 0) {
        const unsigned way = static_cast<unsigned>(off) +
                             static_cast<unsigned>(std::countr_zero(match)) / 8;
        match &= match - 1;
        if (((valid >> way) & 1) != 0 && vpns_[base + way] == vpn &&
            (((glob >> way) & 1) != 0 || asids_[base + way] == asid)) {
          return static_cast<int>(way);
        }
      }
    }
    return -1;
  }

  // Exact-LRU promotion over the per-set age permutation (see lru.hpp).
  void Promote(std::size_t set, unsigned way) {
    LruPromote(ages_.data() + set * age_stride_, age_stride_, way);
  }

  unsigned PickVictim(std::size_t set) const;

  std::string name_;
  TlbGeometry geometry_;
  std::size_t sets_ = 1;
  std::size_t ways_ = 1;
  std::uint64_t set_mask_ = 0;
  std::uint64_t full_mask_ = 1;

  std::size_t age_stride_ = 8;        // per-set age/signature bytes, padded for SWAR
  std::vector<std::uint64_t> vpns_;   // [set][way] flattened
  std::vector<Asid> asids_;           // [set][way] flattened
  std::vector<std::uint8_t> ages_;    // LRU rank per entry, 0 = MRU
  std::vector<std::uint8_t> sigs_;    // VpnSignature per entry (stale until valid)
  std::vector<std::uint64_t> valid_;  // per-set way bitmask
  std::vector<std::uint64_t> global_;  // per-set way bitmask
  std::size_t valid_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;

  TaintMap taint_;
  TaintTag taint_owner_ = 0;
};

}  // namespace tp::hw

#endif  // TP_HW_TLB_HPP_
