// TLB model: set-associative translation cache with ASID tags and global
// mappings.
//
// Global entries match regardless of the current ASID and survive
// FlushNonGlobal(); the baseline (single-image) kernel maps its window
// global, while clone-capable kernels cannot (each kernel image has its own
// mapping). On a low-associativity L2 TLB this difference is exactly the
// Arm IPC slowdown of paper Table 5.
#ifndef TP_HW_TLB_HPP_
#define TP_HW_TLB_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace tp::hw {

struct TlbGeometry {
  std::size_t entries = 0;
  std::size_t associativity = 1;
  std::size_t Sets() const { return entries / associativity; }
};

class Tlb {
 public:
  Tlb(std::string name, const TlbGeometry& geometry);

  // True on hit for (vpn, asid): an entry matches if its vpn equals and it
  // is either global or tagged with `asid`.
  bool Lookup(std::uint64_t vpn, Asid asid);
  void Insert(std::uint64_t vpn, Asid asid, bool global);

  void FlushAll();          // e.g. Arm TLBIALL
  void FlushNonGlobal();    // e.g. x86 CR3 write without PCID
  void FlushAsid(Asid asid);  // e.g. invpcid single-context

  std::size_t ValidCount() const;
  const TlbGeometry& geometry() const { return geometry_; }
  const std::string& name() const { return name_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void ResetStats();

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t lru = 0;
    Asid asid = 0;
    bool global = false;
    bool valid = false;
  };

  // Set selection, shift/mask when the set count is a power of two (every
  // real geometry), modulo otherwise.
  std::size_t SetBase(std::uint64_t vpn) const {
    std::size_t set = set_mask_ != 0 ? static_cast<std::size_t>(vpn & set_mask_)
                                     : static_cast<std::size_t>(vpn % sets_);
    return set * geometry_.associativity;
  }

  std::string name_;
  TlbGeometry geometry_;
  std::size_t sets_ = 1;
  std::uint64_t set_mask_ = 0;
  std::vector<Entry> entries_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tp::hw

#endif  // TP_HW_TLB_HPP_
