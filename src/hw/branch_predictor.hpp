// Branch predictor model: a branch target buffer (BTB) for indirect/direct
// target prediction plus a gshare-style direction predictor (global history
// register indexing a pattern history table of 2-bit counters) standing in
// for the branch history buffer (BHB) of the paper.
//
// Both structures are virtually indexed and untagged-by-domain, so they leak
// across domains unless explicitly flushed (x86 IBC / Arm BPIALL), which is
// Requirement 1 of the paper for the BP.
#ifndef TP_HW_BRANCH_PREDICTOR_HPP_
#define TP_HW_BRANCH_PREDICTOR_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/taint.hpp"
#include "hw/types.hpp"

namespace tp::hw {

struct BranchPredictorGeometry {
  std::size_t btb_entries = 4096;
  std::size_t btb_associativity = 4;
  std::size_t pht_entries = 16384;  // pattern history table (BHB backing)
  std::size_t history_bits = 16;
  Cycles mispredict_penalty = 15;

  // "" when buildable, else the reason (the constructor throws
  // std::invalid_argument on the same bounds; see CacheGeometry::Validate).
  std::string Validate() const;
};

struct BranchResult {
  bool mispredicted = false;
  Cycles penalty = 0;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorGeometry& geometry);

  // Conditional (or unconditional, with conditional=false) branch at `pc`
  // resolving to `target`, actually `taken`. Returns misprediction outcome
  // and updates BTB + history state.
  BranchResult Branch(VAddr pc, VAddr target, bool taken, bool conditional);

  // Architected flushes.
  void FlushBtb();           // invalidate all BTB entries
  void FlushHistory();       // clear GHR + PHT (IBC-style barrier)
  void FlushAll() {
    FlushBtb();
    FlushHistory();
  }

  // Full disable: every branch costs the mispredict penalty (Arm full-flush
  // scenario in §5.2 disables the BP for the duration).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  std::size_t BtbValidCount() const;
  std::uint64_t mispredicts() const { return mispredicts_; }
  std::uint64_t branches() const { return branches_; }
  void ResetStats();

  const BranchPredictorGeometry& geometry() const { return geometry_; }

  // Taint metadata (active only when tracking was enabled at construction).
  // BTB entries and PHT counters are tagged individually; the GHR is one
  // shared register with a single owner tag.
  void SetTaintOwner(TaintTag owner) { taint_owner_ = owner; }
  const TaintMap& btb_taint() const { return btb_taint_; }
  const TaintMap& pht_taint() const { return pht_taint_; }
  TaintTag ghr_owner() const { return ghr_owner_; }
  std::size_t btb_associativity() const { return geometry_.btb_associativity; }

 private:
  struct BtbEntry {
    std::uint64_t tag = 0;
    VAddr target = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  std::size_t BtbSetBase(VAddr pc) const;
  std::size_t PhtIndex(VAddr pc) const;

  BranchPredictorGeometry geometry_;
  std::vector<BtbEntry> btb_;
  std::vector<std::uint8_t> pht_;  // 2-bit saturating counters
  std::uint64_t ghr_ = 0;          // global history register
  std::uint64_t lru_clock_ = 0;
  std::uint64_t mispredicts_ = 0;
  std::uint64_t branches_ = 0;
  bool enabled_ = true;

  TaintMap btb_taint_;
  TaintMap pht_taint_;
  TaintTag taint_owner_ = 0;
  TaintTag ghr_owner_ = 0;
};

}  // namespace tp::hw

#endif  // TP_HW_BRANCH_PREDICTOR_HPP_
