// A simulated CPU core: private caches, TLBs, branch predictor, stream
// prefetcher, cycle counter and preemption timer, connected to the shared
// LLC and interrupt controller of its Machine.
//
// Every memory operation runs the full path — TLB lookup, page walk through
// the data caches on TLB miss, then L1 → (private L2) → LLC → DRAM — and
// advances the core's cycle counter by the resulting latency. All
// microarchitectural state mutations are explicit, which is what makes
// timing channels (and their mitigations) observable in this model.
#ifndef TP_HW_CORE_HPP_
#define TP_HW_CORE_HPP_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "faults/fault.hpp"
#include "hw/branch_predictor.hpp"
#include "hw/cache.hpp"
#include "hw/perf_counter.hpp"
#include "hw/prefetcher.hpp"
#include "hw/timer.hpp"
#include "hw/tlb.hpp"
#include "hw/translation.hpp"
#include "hw/types.hpp"

namespace tp::hw {

class Machine;

enum class AccessKind {
  kRead,
  kWrite,
  kFetch,
};

// One element of a batched memory-access run (Core::AccessBatch). Batches
// replay their operations in element order, so a batch is bit-identical to
// the equivalent sequence of Access() calls — it only removes the
// per-access dispatch through the user-API layer.
struct MemOp {
  VAddr va = 0;
  AccessKind kind = AccessKind::kRead;
};

struct Latencies {
  Cycles base_op = 1;
  Cycles l1_hit = 4;
  Cycles l2_hit = 12;
  Cycles llc_hit = 40;
  Cycles dram = 200;
  // Sequential (next-line) misses hit the open DRAM row / burst transfer.
  Cycles dram_stream = 60;
  Cycles writeback = 2;       // buffered write-back on the demand path
  Cycles l2_tlb_hit = 8;
  Cycles flush_per_line = 6;  // architected set/way flush, per line
  Cycles flush_dirty_extra = 10;
  Cycles tlb_flush = 100;
  Cycles bp_flush = 200;
};

// Process-wide tally of simulated work, accumulated from each core's
// perf counters when the core is destroyed — no per-access cost. The
// tp_bench --profile mode reads snapshot deltas around each channel to
// report host simulation throughput (accesses/second).
struct SimTally {
  std::uint64_t accesses = 0;  // reads + writes + fetches
  std::uint64_t branches = 0;
};
SimTally SimTallySnapshot();

// Which structures a batched access run touched, derived from its stat
// deltas: a structure moved its hit/miss/writeback tallies iff the run
// probed it (every probe tallies), so the delta-built mask names exactly
// the state the run read or wrote. Two machine states that agree on a
// run's scope are interchangeable for that run — by induction along the
// op sequence, every lookup sees the same tags/ages and takes the same
// path — which is what lets the replay memo fold (and compare) only the
// touched structures instead of the whole machine.
enum BatchScope : std::uint32_t {
  kScopeL1I = 1u << 0,
  kScopeL1D = 1u << 1,
  kScopeL2 = 1u << 2,   // private L2, where present
  kScopeLlc = 1u << 3,
  kScopeItlb = 1u << 4,
  kScopeDtlb = 1u << 5,
  kScopeL2Tlb = 1u << 6,
  // Prefetcher slots + DRAM row memo: trained/read only on LLC demand
  // misses (CachePath), so they ride the llc-miss delta.
  kScopePrefetch = 1u << 7,
  // An inclusive-LLC eviction back-invalidated lines in private caches —
  // possibly another core's, with no stat movement there. Folds every
  // core's private levels.
  kScopeXCores = 1u << 8,
};

class Core {
 public:
  Core(CoreId id, Machine* machine);
  ~Core();

  // --- context (set by the kernel on thread/kernel switch) ---------------

  // `user_ctx` translates user addresses, `kernel_ctx` kernel-window
  // addresses. `kernel_global` marks kernel TLB entries global (only the
  // baseline single-kernel configuration may do this; clone-capable kernels
  // have per-image mappings — the root of the Arm IPC overhead in Table 5).
  void SetUserContext(const TranslationContext* user_ctx);
  void SetKernelContext(const TranslationContext* kernel_ctx, bool kernel_global);
  // Tags prefetcher training so leftover streams from another domain are
  // recognisably stale. The kernel passes the current domain/kernel id.
  void SetDomainTag(std::uint16_t tag) {
    domain_tag_ = tag;
    if (taint_on_) {
      SetTaintOwner(tag);
    }
  }
  std::uint16_t domain_tag() const { return domain_tag_; }

  // --- taint tracking (no-ops unless enabled at construction) --------------

  // Owner stamped on every structure this core touches. Normally follows
  // the domain tag; the kernel sets 0 (neutral) around the schedule-driven
  // switch sequence. Kept separate from the domain tag so prefetcher
  // training owners — simulated behaviour — never change with taint mode.
  void SetTaintOwner(std::uint16_t owner);
  std::uint16_t taint_owner() const { return taint_owner_; }
  // Physical ranges whose contents are taint-neutral by construction: the
  // §4.1 deterministically-prefetched shared region and the x86 manual
  // flush buffers.
  void AddTaintNeutralRange(PAddr base, std::size_t bytes);
  // Address-space half (0 user, 1 kernel) whose translation memo still
  // holds a stale entry (wrong context or generation), or -1 when clean.
  int StaleTranslationMemo() const;

  // --- execution ----------------------------------------------------------

  // Performs one memory operation, advancing the cycle counter. Throws
  // std::runtime_error on a translation fault.
  Cycles Access(VAddr vaddr, AccessKind kind);
  // Batched runs: one call into the memory system for a whole probe or
  // traversal loop. Ops execute strictly in order; the total cost returned
  // (and every state mutation) equals the per-call loop's.
  Cycles AccessBatch(std::span<const VAddr> vaddrs, AccessKind kind);
  Cycles AccessBatch(std::span<const MemOp> ops);
  // Branch at `pc` to `target`; cost depends on predictor state.
  Cycles Branch(VAddr pc, VAddr target, bool taken, bool conditional);
  // Pure compute / pipeline time.
  void AdvanceCycles(Cycles n) { cycles_ += n; }

  Cycles now() const { return cycles_; }

  // --- architected flush operations (used by tp::core flush drivers) ------

  Cycles ArchFlushL1D();      // Arm DCCISW loop; unavailable trap on x86
  Cycles InvalidateL1I();     // ICIALLU / implicit part of manual flush
  Cycles FlushPrivateL2();    // set/way flush of the private L2, if present
  Cycles FlushTlbAll();       // TLBIALL / invpcid all-context
  Cycles FlushTlbNonGlobal();
  Cycles FlushBranchPredictor();  // BPIALL / IBC barrier
  // wbinvd-style: L1s + private L2 + this core's view of the shared LLC.
  // `include_llc=false` is the flush.llc fault-injection path: the private
  // levels flush but the shared LLC keeps (and keeps charging nothing for)
  // its lines.
  Cycles FullCacheFlush(bool include_llc = true);

  // --- component access ----------------------------------------------------

  SetAssociativeCache& l1i() { return *l1i_; }
  SetAssociativeCache& l1d() { return *l1d_; }
  SetAssociativeCache* l2() { return l2_.get(); }
  Tlb& itlb() { return *itlb_; }
  Tlb& dtlb() { return *dtlb_; }
  Tlb& l2tlb() { return *l2tlb_; }
  BranchPredictor& branch_predictor() { return *bp_; }
  StreamPrefetcher& prefetcher() { return *prefetcher_; }
  OneShotTimer& preemption_timer() { return preemption_timer_; }
  PerfCounters& counters() { return counters_; }
  const PerfCounters& counters() const { return counters_; }
  CoreId id() const { return id_; }
  Machine& machine() { return *machine_; }
  const Latencies& lat() const;

  // Invalidate a line in all private caches (inclusive-LLC back-invalidate).
  void BackInvalidateLine(PAddr line_paddr);

  // Folds this core's batch-reachable state (caches, TLBs, prefetcher, DRAM
  // row memo) into a machine state digest (see Machine::StateDigest).
  void DigestState(std::uint64_t& h) const;
  // Folds only the structures named by `scope` (BatchScope bits), in fixed
  // bit order. A batch reads nothing outside the structures it touched, so
  // two states that agree on the touched scope are interchangeable for it —
  // which makes the scoped fold as strong as the whole-machine one at a
  // fraction of the walk (the Haswell LLC alone is ~1.7 MiB of fold).
  void DigestScoped(std::uint64_t& h, std::uint32_t scope) const;
  // The private cache levels only (L1s + private L2): what an inclusive-LLC
  // back-invalidate from another core's batch can reach.
  void DigestPrivateCaches(std::uint64_t& h) const;
  // Bytes DigestScoped would fold: the cost side of the replay-memo gate.
  std::size_t DigestBytesScoped(std::uint32_t scope) const;

 private:
  const TranslationContext* ContextFor(VAddr vaddr) const;
  // TLB + walk; returns translation, charging cost into `cost`.
  Translation TranslateCharged(VAddr vaddr, bool instruction, Cycles& cost);
  // L1 -> L2 -> LLC -> DRAM; returns latency.
  Cycles CachePath(VAddr vaddr, PAddr paddr, AccessKind kind);
  // Demand access used by the page walker (physical, data side).
  Cycles WalkerRead(PAddr paddr);

  CoreId id_;
  Machine* machine_;
  std::unique_ptr<SetAssociativeCache> l1i_;
  std::unique_ptr<SetAssociativeCache> l1d_;
  std::unique_ptr<SetAssociativeCache> l2_;  // null on Arm (shared L2 is the LLC)
  std::unique_ptr<Tlb> itlb_;
  std::unique_ptr<Tlb> dtlb_;
  std::unique_ptr<Tlb> l2tlb_;
  std::unique_ptr<BranchPredictor> bp_;
  std::unique_ptr<StreamPrefetcher> prefetcher_;
  OneShotTimer preemption_timer_;
  PerfCounters counters_;

  bool TaintNeutral(PAddr paddr) const {
    for (const auto& range : taint_neutral_) {
      if (paddr >= range.first && paddr < range.second) {
        return true;
      }
    }
    return false;
  }

  const TranslationContext* user_ctx_ = nullptr;
  const TranslationContext* kernel_ctx_ = nullptr;
  bool kernel_global_ = true;
  std::uint16_t domain_tag_ = 0;
  bool taint_on_ = false;
  std::uint16_t taint_owner_ = 0;
  std::vector<std::pair<PAddr, PAddr>> taint_neutral_;  // [base, end)
  Cycles cycles_ = 0;
  std::uint64_t last_miss_line_ = ~std::uint64_t{0};
  std::vector<PAddr> walk_scratch_;

  // One-page translation memo per address-space half, keyed on the context
  // and its generation counter: purely a host-side shortcut past the
  // virtual Translate() call (the simulated TLB lookup still runs and is
  // charged above). Invalidated by context switches and generation bumps.
  struct TranslationMemo {
    const TranslationContext* ctx = nullptr;
    std::uint64_t vpn = ~std::uint64_t{0};
    std::uint64_t gen = 0;
    Translation tr;
  };
  TranslationMemo trans_memo_[2];  // [user, kernel]
  const std::uint64_t* user_gen_ = &kStaticTranslationGeneration;
  const std::uint64_t* kernel_gen_ = &kStaticTranslationGeneration;

  // Counter movement of one steady-state batch run, applied wholesale when
  // the run is replayed instead of re-simulated. Covers every statistic a
  // batched access can advance: the core's perf counters, the hit/miss/
  // writeback tallies of each cache the run (or its page walks and prefetch
  // fills) touches, and the TLB tallies. State changes need no record — a
  // replay only fires at a proven fixpoint, where the live run would leave
  // every tag, age, dirty bit and taint stamp exactly as it found them.
  struct StructStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
  };
  struct ReplayDeltas {
    std::uint64_t l1d_misses = 0;
    std::uint64_t l1i_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t tlb_misses = 0;
    std::uint64_t page_walks = 0;
    StructStats l1i, l1d, l2, llc;
    StructStats itlb, dtlb, l2tlb;  // writebacks unused
    // Inclusive-LLC back-invalidates the run triggered (machine-wide count;
    // scope tracking only — invalidation bumps no replayable stat).
    std::uint64_t back_invals = 0;
    Cycles total = 0;
  };
  // Counter snapshot bracketing a live run; DiffStats turns two of these
  // into the ReplayDeltas above.
  struct StatSnapshot {
    std::uint64_t c[7];       // perf-counter fields + back-invals, DiffStats order
    StructStats s[7];         // l1i l1d l2 llc itlb dtlb l2tlb
  };
  StatSnapshot TakeStats() const;
  ReplayDeltas DiffStats(const StatSnapshot& before, Cycles total) const;
  void ApplyReplay(const ReplayDeltas& d);
  static std::uint32_t ScopeOf(const ReplayDeltas& d);

  // Batch replay memo (see AccessBatch): a batch re-run from the exact
  // machine state it last left behind is at a fixpoint — it repeats the
  // same hits and misses, rebuilds the same tags, ages and taint stamps,
  // and charges the same cycles — so its recorded deltas can be applied in
  // place of the per-op loop. Two proofs establish the fixpoint: an
  // all-hit run is one analytically (no fills, final LRU ages a pure
  // function of the touch order, dirty/taint writes idempotent), and any
  // batch is one once two consecutive live runs end in the same scoped
  // state digest. The fixpoint state is recognised two ways: the machine
  // generation still matching (nothing touched a cache or TLB since the
  // run) or, across intervening work, the scoped digest of the current
  // state matching digest_post — the cross-timeslice rendezvous that lets
  // a probe kernel resume replaying right after a domain switch perturbed
  // unrelated state.
  struct BatchMemo {
    const VAddr* data = nullptr;
    std::size_t size = 0;
    AccessKind kind = AccessKind::kRead;
    std::uint64_t content_hash = 0;
    const TranslationContext* user_ctx = nullptr;
    const TranslationContext* kernel_ctx = nullptr;
    std::uint64_t user_gen = 0;
    std::uint64_t kernel_gen = 0;
    std::uint16_t taint_owner = 0;
    std::uint16_t domain_tag = 0;   // prefetcher training owner on misses
    bool kernel_global = true;      // global bit on kernel TLB inserts
    std::uint64_t state_gen = 0;    // machine generation right after the run
    std::uint32_t scope = 0;        // BatchScope mask of the recorded run
    std::uint64_t digest_post = 0;  // scoped digest after the run (0 = none)
    bool verified = false;          // fixpoint proven; replay allowed
    std::uint8_t fail_streak = 0;   // consecutive digest rendezvous misses
    ReplayDeltas deltas;
  };
  static constexpr std::size_t kBatchMemos = 16;
  // Rendezvous digests stop being attempted for a memo after this many
  // consecutive misses: a batch whose pre-state never recurs (a raw-mode
  // receiver drifting with the sender) must not pay a fold per lookup.
  static constexpr std::uint8_t kMaxFailStreak = 8;
  // A digest fold costs ~1 host ns per 4-6 bytes; a live run ~1 ns per
  // simulated cycle. A digest is only worth taking when the fold is
  // cheaper than the run it may later elide.
  static constexpr std::uint64_t kDigestBytesPerCycle = 4;
  BatchMemo batch_memos_[kBatchMemos];
  std::size_t batch_memo_next_ = 0;
  // Latched at construction: replay stands down whenever fault injection is
  // active, so every site still sees every eligible event (a FireOnce
  // ordinal must not be starved by an elided run).
  bool batch_replay_on_ = false;

  // memo.stale fault site: when armed, context switches keep the memo and
  // the Nth cross-context lookup of a memoised page reuses the stale entry.
  faults::FaultSite fault_memo_stale_;
};

}  // namespace tp::hw

#endif  // TP_HW_CORE_HPP_
