// Optional owner-domain taint metadata for microarchitectural state.
//
// When taint tracking is enabled (TP_TAINT environment variable, or
// SetTaintTrackingEnabled before constructing the machine), every stateful
// structure — cache lines, TLB entries, branch-predictor entries, prefetcher
// streams, the per-core translation memo, pending interrupts — carries the
// DomainId that last (re)filled it. The kernel-side ContractChecker then
// verifies at each domain switch that no *observable* state tainted by
// another domain survived the active flush/partition mode (the
// time-protection contract of the paper, checked structurally rather than
// statistically via MI).
//
// The switch is construct-time: structures latch the flag when built, so
// the batched hot paths pay exactly one predictable branch per access when
// tracking is off and nothing changes bit-for-bit in the simulated
// behaviour either way (taint is pure metadata).
//
// Owner tag 0 is "taint-neutral": state whose contents are
// schedule-determined rather than secret-dependent (the kernel switch
// sequence itself, the §4.1 deterministically-prefetched shared region, the
// x86 flush buffers) is tagged 0 and never counts as a violation.
#ifndef TP_HW_TAINT_HPP_
#define TP_HW_TAINT_HPP_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tp::hw {

// Matches kernel DomainId (std::uint16_t); 0 = taint-neutral.
using TaintTag = std::uint16_t;

// Process-global construct-time switch. Reads TP_TAINT ("" / "0" = off)
// unless overridden; structures latch the value at construction, so flip it
// before building a Machine.
bool TaintTrackingEnabled();
void SetTaintTrackingEnabled(bool enabled);

// One residual-state finding: after a switch to `incoming`, `structure`
// still held state owned by `residual_owner` at `where`.
struct TaintViolation {
  std::string structure;  // "L1-D", "LLC", "D-TLB", "BTB", ...
  std::string where;      // "slice 1 set 5 way 2", "slot 3", ...
  TaintTag residual_owner = 0;
  TaintTag incoming = 0;
  std::uint64_t switch_index = 0;  // ordinal of the offending switch
};

std::string ToString(const TaintViolation& v);

// Aggregated contract-check outcome over a run: how many domain switches
// were checked, how many left foreign-tainted observable state behind, and
// the first violating access (the bug report).
struct ContractTally {
  std::uint64_t switches = 0;
  std::uint64_t dirty_switches = 0;
  std::uint64_t violations = 0;   // foreign entries summed over dirty switches
  std::uint64_t whitelisted = 0;  // known-unfixable residue (prefetcher, §5.3.2)
  bool has_first = false;
  TaintViolation first;

  bool clean() const { return dirty_switches == 0; }
  void Merge(const ContractTally& other);
};

// The tally the kernel's checker writes into; thread-local so sharded
// sweeps on a thread pool do not interleave. Use ContractCapture to scope
// a measurement.
ContractTally& ThreadContractTally();

// RAII capture: zeroes the thread tally on entry, Take() reads what
// accumulated, and the destructor folds it back into whatever tally was
// live before (so nested/ambient accounting is never lost).
class ContractCapture {
 public:
  ContractCapture();
  ~ContractCapture();
  ContractCapture(const ContractCapture&) = delete;
  ContractCapture& operator=(const ContractCapture&) = delete;

  ContractTally Take() const { return ThreadContractTally(); }

 private:
  ContractTally saved_;
};

// Owner tags for one indexed structure (cache lines, TLB/BTB/PHT entries).
// Maintains per-owner, per-colour counts incrementally so the per-switch
// contract check is O(owners x colours) without scanning entries; the full
// scan (FindForeign) runs only to localise an already-detected violation.
class TaintMap {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  // Activates the map (default state is off and free). `colours` is the
  // page-colour count of the structure (1 = uncolourable, everything
  // observable); must be <= 64 so a colour set fits a mask word.
  void Enable(std::size_t entries, std::size_t colours);
  bool on() const { return !meta_.empty(); }

  // Owner and colour pack into one metadata word so the retag fast path —
  // by far the common case: a domain re-touching its own state — is a
  // single load and compare, inline. Only a real ownership/colour change
  // drops to the counting slow path.
  void Tag(std::size_t index, TaintTag owner, std::size_t colour) {
    const std::uint32_t meta =
        static_cast<std::uint32_t>(owner) | (static_cast<std::uint32_t>(colour) << 16);
    const std::uint32_t old = meta_[index];
    if (old == meta || (owner == 0 && (old & 0xFFFF) == 0)) {
      return;
    }
    TagSlow(index, meta, old);
  }
  void Clear(std::size_t index) { Tag(index, 0, 0); }
  void ClearAll();

  TaintTag OwnerOf(std::size_t index) const {
    return static_cast<TaintTag>(meta_[index] & 0xFFFF);
  }
  std::size_t ColourOf(std::size_t index) const {
    return static_cast<std::size_t>(meta_[index] >> 16);
  }
  // Entry count (0 when the map is off) and the colour count the map was
  // enabled with — the bounds a brute-force consistency walk iterates over.
  std::size_t size() const { return meta_.size(); }
  std::size_t colours() const { return colours_; }

  // Folds the per-entry metadata into a batch-replay state digest (the
  // per-owner counts are derived from it and need no separate fold).
  void DigestState(std::uint64_t& h) const;
  std::size_t DigestSizeBytes() const { return meta_.size() * sizeof(std::uint32_t); }

  // Entries owned by a domain other than 0/`incoming` whose colour is in
  // `colour_mask` (bit c = colour c observable by the incoming domain).
  std::uint64_t ForeignCount(TaintTag incoming, std::uint64_t colour_mask) const;
  // Index of the first such entry, or npos.
  std::size_t FindForeign(TaintTag incoming, std::uint64_t colour_mask) const;

 private:
  struct OwnerCount {
    TaintTag owner = 0;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> per_colour;
  };
  OwnerCount& Slot(TaintTag owner);
  void TagSlow(std::size_t index, std::uint32_t meta, std::uint32_t old);

  std::vector<std::uint32_t> meta_;  // owner | colour << 16; owner 0 = neutral
  std::size_t colours_ = 1;
  std::vector<OwnerCount> counts_;  // small linear owner list
};

}  // namespace tp::hw

#endif  // TP_HW_TAINT_HPP_
