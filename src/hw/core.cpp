#include "hw/core.hpp"

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "hw/machine.hpp"

namespace tp::hw {

namespace {
std::atomic<std::uint64_t> g_sim_accesses{0};
std::atomic<std::uint64_t> g_sim_branches{0};
}  // namespace

SimTally SimTallySnapshot() {
  return SimTally{g_sim_accesses.load(std::memory_order_relaxed),
                  g_sim_branches.load(std::memory_order_relaxed)};
}

Core::~Core() {
  g_sim_accesses.fetch_add(counters_.reads + counters_.writes + counters_.fetches,
                           std::memory_order_relaxed);
  g_sim_branches.fetch_add(counters_.branches, std::memory_order_relaxed);
}

Core::Core(CoreId id, Machine* machine) : id_(id), machine_(machine) {
  const MachineConfig& cfg = machine->config();
  l1i_ = std::make_unique<SetAssociativeCache>("L1-I", cfg.l1i, Indexing::kVirtual);
  l1d_ = std::make_unique<SetAssociativeCache>("L1-D", cfg.l1d, Indexing::kVirtual);
  if (cfg.has_private_l2) {
    l2_ = std::make_unique<SetAssociativeCache>("L2", cfg.l2, Indexing::kPhysical);
  }
  itlb_ = std::make_unique<Tlb>("I-TLB", cfg.itlb);
  dtlb_ = std::make_unique<Tlb>("D-TLB", cfg.dtlb);
  l2tlb_ = std::make_unique<Tlb>("L2-TLB", cfg.l2tlb);
  bp_ = std::make_unique<BranchPredictor>(cfg.bp);
  prefetcher_ = std::make_unique<StreamPrefetcher>(cfg.prefetcher);
  taint_on_ = TaintTrackingEnabled();
  fault_memo_stale_ = faults::FaultSite::For("memo.stale");
}

void Core::SetTaintOwner(std::uint16_t owner) {
  taint_owner_ = owner;
  if (!taint_on_) {
    return;
  }
  itlb_->SetTaintOwner(owner);
  dtlb_->SetTaintOwner(owner);
  l2tlb_->SetTaintOwner(owner);
  bp_->SetTaintOwner(owner);
}

void Core::AddTaintNeutralRange(PAddr base, std::size_t bytes) {
  if (bytes > 0) {
    taint_neutral_.emplace_back(base, base + bytes);
  }
}

int Core::StaleTranslationMemo() const {
  const TranslationContext* current[2] = {user_ctx_, kernel_ctx_};
  const std::uint64_t* gens[2] = {user_gen_, kernel_gen_};
  for (int half = 0; half < 2; ++half) {
    const TranslationMemo& memo = trans_memo_[half];
    if (memo.ctx != nullptr && (memo.ctx != current[half] || memo.gen != *gens[half])) {
      return half;
    }
  }
  return -1;
}

const Latencies& Core::lat() const { return machine_->config().lat; }

void Core::SetUserContext(const TranslationContext* user_ctx) {
  user_ctx_ = user_ctx;
  user_gen_ = user_ctx != nullptr ? user_ctx->generation() : &kStaticTranslationGeneration;
  if (!fault_memo_stale_.armed()) {
    trans_memo_[0] = TranslationMemo{};
  }
}

void Core::SetKernelContext(const TranslationContext* kernel_ctx, bool kernel_global) {
  kernel_ctx_ = kernel_ctx;
  kernel_global_ = kernel_global;
  kernel_gen_ =
      kernel_ctx != nullptr ? kernel_ctx->generation() : &kStaticTranslationGeneration;
  if (!fault_memo_stale_.armed()) {
    trans_memo_[1] = TranslationMemo{};
  }
}

const TranslationContext* Core::ContextFor(VAddr vaddr) const {
  return IsKernelAddress(vaddr) ? kernel_ctx_ : user_ctx_;
}

Cycles Core::WalkerRead(PAddr paddr) {
  // Page-table entry read: physical, data-side, no recursive translation.
  return CachePath(KernelVaddrFor(paddr), paddr, AccessKind::kRead);
}

Translation Core::TranslateCharged(VAddr vaddr, bool instruction, Cycles& cost) {
  const TranslationContext* ctx = ContextFor(vaddr);
  if (ctx == nullptr) {
    std::ostringstream oss;
    oss << "core " << id_ << ": no translation context for vaddr 0x" << std::hex << vaddr;
    throw std::runtime_error(oss.str());
  }

  bool kernel_addr = IsKernelAddress(vaddr);
  bool global = kernel_addr && kernel_global_;
  // The kernel window is mapped into every user address space, so without
  // the global bit its TLB entries are tagged (and duplicated) per user
  // ASID — the pressure that makes clone-capable kernels expensive on the
  // 2-way Arm L2 TLB (paper Table 5).
  Asid asid = (kernel_addr && user_ctx_ != nullptr) ? user_ctx_->asid() : ctx->asid();
  std::uint64_t vpn = PageNumber(vaddr);

  Tlb& tlb = instruction ? *itlb_ : *dtlb_;
  if (!tlb.Lookup(vpn, asid)) {
    if (l2tlb_->Lookup(vpn, asid)) {
      cost += lat().l2_tlb_hit;
    } else {
      ++counters_.tlb_misses;
      ++counters_.page_walks;
      walk_scratch_.clear();
      ctx->WalkPath(vaddr, walk_scratch_);
      for (PAddr pte : walk_scratch_) {
        cost += WalkerRead(pte);
      }
      l2tlb_->Insert(vpn, asid, global);
    }
    tlb.Insert(vpn, asid, global);
  }

  // Host-side memo of the last translated page: Translate() is a virtual
  // call into a map lookup, paid per access otherwise. The memo key covers
  // the context identity and its generation, so a hit returns exactly what
  // Translate() would.
  TranslationMemo& memo = trans_memo_[kernel_addr ? 1 : 0];
  const std::uint64_t gen = *(kernel_addr ? kernel_gen_ : user_gen_);
  if (memo.ctx == ctx && memo.vpn == vpn && memo.gen == gen) {
    return memo.tr;
  }
  if (fault_memo_stale_.armed() && memo.ctx != nullptr && memo.vpn == vpn &&
      fault_memo_stale_.FireOnce()) {
    return memo.tr;  // injected fault: reuse the stale cross-context entry
  }
  std::optional<Translation> tr = ctx->Translate(vaddr);
  if (!tr.has_value()) {
    std::ostringstream oss;
    oss << "core " << id_ << ": translation fault at vaddr 0x" << std::hex << vaddr;
    throw std::runtime_error(oss.str());
  }
  memo = TranslationMemo{ctx, vpn, gen, *tr};
  return *tr;
}

Cycles Core::CachePath(VAddr vaddr, PAddr paddr, AccessKind kind) {
  const Latencies& L = lat();
  bool instruction = kind == AccessKind::kFetch;
  bool write = kind == AccessKind::kWrite;
  SetAssociativeCache& l1 = instruction ? *l1i_ : *l1d_;

  if (taint_on_) {
    const std::uint16_t owner = TaintNeutral(paddr) ? 0 : taint_owner_;
    l1.SetTaintOwner(owner);
    if (l2_ != nullptr) {
      l2_->SetTaintOwner(owner);
    }
    machine_->llc().SetTaintOwner(owner);
  }

  Cycles cost = L.l1_hit;
  AccessResult r1 = l1.Access(vaddr, paddr, write);
  if (r1.hit) {
    return cost;
  }
  if (instruction) {
    ++counters_.l1i_misses;
  } else {
    ++counters_.l1d_misses;
  }
  if (r1.writeback) {
    cost += L.writeback;
    // Victim write-back lands in the level below (timing only; the victim's
    // address is not tracked through — the write buffer hides it).
  }

  SetAssociativeCache& llc = machine_->llc();
  bool l2_hit = false;
  if (l2_ != nullptr) {
    AccessResult r2 = l2_->Access(vaddr, paddr, false);
    if (r2.writeback) {
      cost += L.writeback;
    }
    if (r2.hit) {
      cost += L.l2_hit;
      l2_hit = true;
    } else {
      ++counters_.l2_misses;
    }
  }

  if (!l2_hit) {
    AccessResult r3 = llc.Access(vaddr, paddr, false);
    if (r3.writeback) {
      cost += L.writeback;
    }
    if (r3.evicted_valid) {
      machine_->BackInvalidateLine(r3.evicted_line_addr * llc.geometry().line_size);
    }
    if (r3.hit) {
      cost += L.llc_hit;
    } else {
      ++counters_.llc_misses;
      std::uint64_t miss_line = llc.LineOf(paddr);
      // Row-buffer/burst locality: consecutive-line misses stream.
      cost += (miss_line == last_miss_line_ + 1) ? L.dram_stream : L.dram;
      last_miss_line_ = miss_line;

      // Stream prefetcher trains on demand misses at the level below L1.
      // Behaviour owner is always the domain tag; the taint owner follows
      // the same neutral masking as the cache levels, so streams trained by
      // the deterministic tick sequence stamp neutral fills instead of
      // fabricating foreign residue in another domain's partition.
      PrefetchOutcome out = prefetcher_->OnDemandMiss(
          miss_line, domain_tag_, instruction, TaintNeutral(paddr) ? 0 : taint_owner_);
      cost += out.interference;
      for (std::size_t i = 0; i < out.fills.size(); ++i) {
        const std::uint64_t fill_line = out.fills[i];
        PAddr fill_paddr = fill_line * llc.geometry().line_size;
        if (taint_on_) {
          // A prefetch fill belongs to the stream that issued it — a stale
          // stream keeps stamping its old domain after the switch (§5.3.2).
          const std::uint16_t fill_owner =
              TaintNeutral(fill_paddr) ? 0 : out.fills.owner(i);
          llc.SetTaintOwner(fill_owner);
          if (l2_ != nullptr) {
            l2_->SetTaintOwner(fill_owner);
          }
        }
        AccessResult fr = llc.Access(KernelVaddrFor(fill_paddr), fill_paddr, false);
        if (fr.evicted_valid) {
          machine_->BackInvalidateLine(fr.evicted_line_addr * llc.geometry().line_size);
        }
        if (l2_ != nullptr) {
          l2_->Insert(KernelVaddrFor(fill_paddr), fill_paddr, false);
        }
      }
    }
  }
  return cost;
}

Cycles Core::Access(VAddr vaddr, AccessKind kind) {
  Cycles cost = lat().base_op;
  switch (kind) {
    case AccessKind::kRead:
      ++counters_.reads;
      break;
    case AccessKind::kWrite:
      ++counters_.writes;
      break;
    case AccessKind::kFetch:
      ++counters_.fetches;
      break;
  }
  Translation tr = TranslateCharged(vaddr, kind == AccessKind::kFetch, cost);
  PAddr paddr = tr.paddr + PageOffset(vaddr);
  cost += CachePath(vaddr, paddr, kind);
  cycles_ += cost;
  return cost;
}

Cycles Core::AccessBatch(std::span<const VAddr> vaddrs, AccessKind kind) {
  Cycles total = 0;
  for (VAddr va : vaddrs) {
    total += Access(va, kind);
  }
  return total;
}

Cycles Core::AccessBatch(std::span<const MemOp> ops) {
  Cycles total = 0;
  for (const MemOp& op : ops) {
    total += Access(op.va, op.kind);
  }
  return total;
}

Cycles Core::Branch(VAddr pc, VAddr target, bool taken, bool conditional) {
  ++counters_.branches;
  BranchResult r = bp_->Branch(pc, target, taken, conditional);
  Cycles cost = lat().base_op + r.penalty;
  if (r.mispredicted) {
    ++counters_.mispredicts;
  }
  cycles_ += cost;
  return cost;
}

Cycles Core::ArchFlushL1D() {
  if (!machine_->config().has_architected_l1_flush) {
    throw std::logic_error("architected L1-D flush not available on this platform");
  }
  const Latencies& L = lat();
  std::size_t lines = l1d_->geometry().TotalLines();
  std::size_t dirty = l1d_->FlushAll();
  Cycles cost = static_cast<Cycles>(lines) * L.flush_per_line +
                static_cast<Cycles>(dirty) * L.flush_dirty_extra;
  cycles_ += cost;
  return cost;
}

Cycles Core::InvalidateL1I() {
  const Latencies& L = lat();
  std::size_t lines = l1i_->geometry().TotalLines();
  l1i_->InvalidateAll();
  Cycles cost = static_cast<Cycles>(lines) * 1;  // invalidate-only, no write-back
  (void)L;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushPrivateL2() {
  if (l2_ == nullptr) {
    return 0;
  }
  const Latencies& L = lat();
  std::size_t lines = l2_->geometry().TotalLines();
  std::size_t dirty = l2_->FlushAll();
  Cycles cost = static_cast<Cycles>(lines) * L.flush_per_line +
                static_cast<Cycles>(dirty) * L.flush_dirty_extra;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushTlbAll() {
  itlb_->FlushAll();
  dtlb_->FlushAll();
  l2tlb_->FlushAll();
  Cycles cost = lat().tlb_flush;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushTlbNonGlobal() {
  itlb_->FlushNonGlobal();
  dtlb_->FlushNonGlobal();
  l2tlb_->FlushNonGlobal();
  Cycles cost = lat().tlb_flush;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushBranchPredictor() {
  bp_->FlushAll();
  Cycles cost = lat().bp_flush;
  cycles_ += cost;
  return cost;
}

Cycles Core::FullCacheFlush(bool include_llc) {
  const Latencies& L = lat();
  Cycles cost = 0;

  std::size_t l1d_lines = l1d_->geometry().TotalLines();
  std::size_t l1d_dirty = l1d_->FlushAll();
  cost += static_cast<Cycles>(l1d_lines) * L.flush_per_line +
          static_cast<Cycles>(l1d_dirty) * L.flush_dirty_extra;
  cost += static_cast<Cycles>(l1i_->InvalidateAll()) * 1;

  if (l2_ != nullptr) {
    std::size_t l2_lines = l2_->geometry().TotalLines();
    std::size_t l2_dirty = l2_->FlushAll();
    cost += static_cast<Cycles>(l2_lines) * L.flush_per_line +
            static_cast<Cycles>(l2_dirty) * L.flush_dirty_extra;
  }

  if (include_llc) {
    SetAssociativeCache& llc = machine_->llc();
    std::size_t llc_lines = llc.geometry().TotalLines();
    std::size_t llc_dirty = llc.FlushAll();
    cost += static_cast<Cycles>(llc_lines) * L.flush_per_line +
            static_cast<Cycles>(llc_dirty) * L.flush_dirty_extra;
  }

  cycles_ += cost;
  return cost;
}

void Core::BackInvalidateLine(PAddr line_paddr) {
  l1d_->InvalidateLineByPaddr(line_paddr);
  l1i_->InvalidateLineByPaddr(line_paddr);
  if (l2_ != nullptr) {
    l2_->InvalidateLineByPaddr(line_paddr);
  }
}

}  // namespace tp::hw
