#include "hw/core.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "hw/digest.hpp"
#include "hw/machine.hpp"

namespace tp::hw {

namespace {
std::atomic<std::uint64_t> g_sim_accesses{0};
std::atomic<std::uint64_t> g_sim_branches{0};

// Same convention as TP_QUICK / TP_TAINT: unset, "" and "0" mean off.
bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}
}  // namespace

SimTally SimTallySnapshot() {
  return SimTally{g_sim_accesses.load(std::memory_order_relaxed),
                  g_sim_branches.load(std::memory_order_relaxed)};
}

Core::~Core() {
  g_sim_accesses.fetch_add(counters_.reads + counters_.writes + counters_.fetches,
                           std::memory_order_relaxed);
  g_sim_branches.fetch_add(counters_.branches, std::memory_order_relaxed);
}

Core::Core(CoreId id, Machine* machine) : id_(id), machine_(machine) {
  const MachineConfig& cfg = machine->config();
  l1i_ = std::make_unique<SetAssociativeCache>("L1-I", cfg.l1i, Indexing::kVirtual);
  l1d_ = std::make_unique<SetAssociativeCache>("L1-D", cfg.l1d, Indexing::kVirtual);
  if (cfg.has_private_l2) {
    l2_ = std::make_unique<SetAssociativeCache>("L2", cfg.l2, Indexing::kPhysical);
  }
  itlb_ = std::make_unique<Tlb>("I-TLB", cfg.itlb);
  dtlb_ = std::make_unique<Tlb>("D-TLB", cfg.dtlb);
  l2tlb_ = std::make_unique<Tlb>("L2-TLB", cfg.l2tlb);
  bp_ = std::make_unique<BranchPredictor>(cfg.bp);
  prefetcher_ = std::make_unique<StreamPrefetcher>(cfg.prefetcher);
  taint_on_ = TaintTrackingEnabled();
  fault_memo_stale_ = faults::FaultSite::For("memo.stale");
  // Replay elides whole runs, which would starve FireOnce event counts on
  // any armed site, so it stands down for the entire process under fault
  // injection (same construct-time pattern as the sites themselves).
  // TP_NO_REPLAY forces every batch down the live path — the A/B switch
  // for localising a suspected replay divergence (results must be
  // bit-identical either way; see tests/hw/batch_replay_test.cpp).
  batch_replay_on_ = !faults::FaultInjectionEnabled() && !EnvFlagSet("TP_NO_REPLAY");
}

void Core::SetTaintOwner(std::uint16_t owner) {
  taint_owner_ = owner;
  if (!taint_on_) {
    return;
  }
  itlb_->SetTaintOwner(owner);
  dtlb_->SetTaintOwner(owner);
  l2tlb_->SetTaintOwner(owner);
  bp_->SetTaintOwner(owner);
}

void Core::AddTaintNeutralRange(PAddr base, std::size_t bytes) {
  if (bytes > 0) {
    taint_neutral_.emplace_back(base, base + bytes);
  }
}

int Core::StaleTranslationMemo() const {
  const TranslationContext* current[2] = {user_ctx_, kernel_ctx_};
  const std::uint64_t* gens[2] = {user_gen_, kernel_gen_};
  for (int half = 0; half < 2; ++half) {
    const TranslationMemo& memo = trans_memo_[half];
    if (memo.ctx != nullptr && (memo.ctx != current[half] || memo.gen != *gens[half])) {
      return half;
    }
  }
  return -1;
}

const Latencies& Core::lat() const { return machine_->config().lat; }

void Core::SetUserContext(const TranslationContext* user_ctx) {
  user_ctx_ = user_ctx;
  user_gen_ = user_ctx != nullptr ? user_ctx->generation() : &kStaticTranslationGeneration;
  if (!fault_memo_stale_.armed()) {
    trans_memo_[0] = TranslationMemo{};
  }
}

void Core::SetKernelContext(const TranslationContext* kernel_ctx, bool kernel_global) {
  kernel_ctx_ = kernel_ctx;
  kernel_global_ = kernel_global;
  kernel_gen_ =
      kernel_ctx != nullptr ? kernel_ctx->generation() : &kStaticTranslationGeneration;
  if (!fault_memo_stale_.armed()) {
    trans_memo_[1] = TranslationMemo{};
  }
}

const TranslationContext* Core::ContextFor(VAddr vaddr) const {
  return IsKernelAddress(vaddr) ? kernel_ctx_ : user_ctx_;
}

Cycles Core::WalkerRead(PAddr paddr) {
  // Page-table entry read: physical, data-side, no recursive translation.
  return CachePath(KernelVaddrFor(paddr), paddr, AccessKind::kRead);
}

Translation Core::TranslateCharged(VAddr vaddr, bool instruction, Cycles& cost) {
  const TranslationContext* ctx = ContextFor(vaddr);
  if (ctx == nullptr) {
    std::ostringstream oss;
    oss << "core " << id_ << ": no translation context for vaddr 0x" << std::hex << vaddr;
    throw std::runtime_error(oss.str());
  }

  bool kernel_addr = IsKernelAddress(vaddr);
  bool global = kernel_addr && kernel_global_;
  // The kernel window is mapped into every user address space, so without
  // the global bit its TLB entries are tagged (and duplicated) per user
  // ASID — the pressure that makes clone-capable kernels expensive on the
  // 2-way Arm L2 TLB (paper Table 5).
  Asid asid = (kernel_addr && user_ctx_ != nullptr) ? user_ctx_->asid() : ctx->asid();
  std::uint64_t vpn = PageNumber(vaddr);

  Tlb& tlb = instruction ? *itlb_ : *dtlb_;
  if (!tlb.Lookup(vpn, asid)) {
    if (l2tlb_->Lookup(vpn, asid)) {
      cost += lat().l2_tlb_hit;
    } else {
      ++counters_.tlb_misses;
      ++counters_.page_walks;
      walk_scratch_.clear();
      ctx->WalkPath(vaddr, walk_scratch_);
      for (PAddr pte : walk_scratch_) {
        cost += WalkerRead(pte);
      }
      l2tlb_->Insert(vpn, asid, global);
    }
    tlb.Insert(vpn, asid, global);
  }

  // Host-side memo of the last translated page: Translate() is a virtual
  // call into a map lookup, paid per access otherwise. The memo key covers
  // the context identity and its generation, so a hit returns exactly what
  // Translate() would.
  TranslationMemo& memo = trans_memo_[kernel_addr ? 1 : 0];
  const std::uint64_t gen = *(kernel_addr ? kernel_gen_ : user_gen_);
  if (memo.ctx == ctx && memo.vpn == vpn && memo.gen == gen) {
    return memo.tr;
  }
  if (fault_memo_stale_.armed() && memo.ctx != nullptr && memo.vpn == vpn &&
      fault_memo_stale_.FireOnce()) {
    return memo.tr;  // injected fault: reuse the stale cross-context entry
  }
  std::optional<Translation> tr = ctx->Translate(vaddr);
  if (!tr.has_value()) {
    std::ostringstream oss;
    oss << "core " << id_ << ": translation fault at vaddr 0x" << std::hex << vaddr;
    throw std::runtime_error(oss.str());
  }
  memo = TranslationMemo{ctx, vpn, gen, *tr};
  return *tr;
}

Cycles Core::CachePath(VAddr vaddr, PAddr paddr, AccessKind kind) {
  const Latencies& L = lat();
  bool instruction = kind == AccessKind::kFetch;
  bool write = kind == AccessKind::kWrite;
  SetAssociativeCache& l1 = instruction ? *l1i_ : *l1d_;

  if (taint_on_) {
    const std::uint16_t owner = TaintNeutral(paddr) ? 0 : taint_owner_;
    l1.SetTaintOwner(owner);
    if (l2_ != nullptr) {
      l2_->SetTaintOwner(owner);
    }
    machine_->llc().SetTaintOwner(owner);
  }

  Cycles cost = L.l1_hit;
  AccessResult r1 = l1.Access(vaddr, paddr, write);
  if (r1.hit) {
    return cost;
  }
  if (instruction) {
    ++counters_.l1i_misses;
  } else {
    ++counters_.l1d_misses;
  }
  if (r1.writeback) {
    cost += L.writeback;
    // Victim write-back lands in the level below (timing only; the victim's
    // address is not tracked through — the write buffer hides it).
  }

  SetAssociativeCache& llc = machine_->llc();
  bool l2_hit = false;
  if (l2_ != nullptr) {
    AccessResult r2 = l2_->Access(vaddr, paddr, false);
    if (r2.writeback) {
      cost += L.writeback;
    }
    if (r2.hit) {
      cost += L.l2_hit;
      l2_hit = true;
    } else {
      ++counters_.l2_misses;
    }
  }

  if (!l2_hit) {
    AccessResult r3 = llc.Access(vaddr, paddr, false);
    if (r3.writeback) {
      cost += L.writeback;
    }
    if (r3.evicted_valid) {
      machine_->BackInvalidateLine(r3.evicted_line_addr * llc.geometry().line_size);
    }
    if (r3.hit) {
      cost += L.llc_hit;
    } else {
      ++counters_.llc_misses;
      std::uint64_t miss_line = llc.LineOf(paddr);
      // Row-buffer/burst locality: consecutive-line misses stream.
      cost += (miss_line == last_miss_line_ + 1) ? L.dram_stream : L.dram;
      last_miss_line_ = miss_line;

      // Stream prefetcher trains on demand misses at the level below L1.
      // Behaviour owner is always the domain tag; the taint owner follows
      // the same neutral masking as the cache levels, so streams trained by
      // the deterministic tick sequence stamp neutral fills instead of
      // fabricating foreign residue in another domain's partition.
      PrefetchOutcome out = prefetcher_->OnDemandMiss(
          miss_line, domain_tag_, instruction, TaintNeutral(paddr) ? 0 : taint_owner_);
      cost += out.interference;
      for (std::size_t i = 0; i < out.fills.size(); ++i) {
        const std::uint64_t fill_line = out.fills[i];
        PAddr fill_paddr = fill_line * llc.geometry().line_size;
        if (taint_on_) {
          // A prefetch fill belongs to the stream that issued it — a stale
          // stream keeps stamping its old domain after the switch (§5.3.2).
          const std::uint16_t fill_owner =
              TaintNeutral(fill_paddr) ? 0 : out.fills.owner(i);
          llc.SetTaintOwner(fill_owner);
          if (l2_ != nullptr) {
            l2_->SetTaintOwner(fill_owner);
          }
        }
        AccessResult fr = llc.Access(KernelVaddrFor(fill_paddr), fill_paddr, false);
        if (fr.evicted_valid) {
          machine_->BackInvalidateLine(fr.evicted_line_addr * llc.geometry().line_size);
        }
        if (l2_ != nullptr) {
          l2_->Insert(KernelVaddrFor(fill_paddr), fill_paddr, false);
        }
      }
    }
  }
  return cost;
}

namespace {

// Content fingerprint for the batch-replay memo (FNV-1a over the address
// words): senders advance their traces in place, so pointer+size identity
// alone cannot prove the list is unchanged.
std::uint64_t HashBatch(std::span<const VAddr> vaddrs) {
  std::uint64_t h = 1469598103934665603ull;
  for (VAddr va : vaddrs) {
    h ^= va;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Cycles Core::Access(VAddr vaddr, AccessKind kind) {
  machine_->BumpStateGen();
  Cycles cost = lat().base_op;
  switch (kind) {
    case AccessKind::kRead:
      ++counters_.reads;
      break;
    case AccessKind::kWrite:
      ++counters_.writes;
      break;
    case AccessKind::kFetch:
      ++counters_.fetches;
      break;
  }
  Translation tr = TranslateCharged(vaddr, kind == AccessKind::kFetch, cost);
  PAddr paddr = tr.paddr + PageOffset(vaddr);
  cost += CachePath(vaddr, paddr, kind);
  cycles_ += cost;
  return cost;
}

// The batch loops hoist the per-op dispatch out of Access(): perf counters
// bulk-increment once, the base-op latency loads once, and the cycle counter
// updates once at the end. Nothing inside TranslateCharged/CachePath reads
// cycles_ or the counters mid-run, so every simulated state mutation and the
// total cost are bit-identical to the per-call loop.
//
// On top of that sits the replay memo. A batch re-run from the exact state
// it last left the machine in is at a fixpoint: it repeats the same hits
// and misses, rebuilds the same tags, LRU ages and taint stamps, and
// charges the same cycles — so the recorded counter deltas can be applied
// in place of the per-op loop. Two proofs establish the fixpoint. An
// all-hit run is one analytically: residency is what makes an op hit
// (tags, not ages), final LRU ages depend only on the touch order, and
// dirty bits and taint stamps are idempotent writes of the same values.
// Any other batch — e.g. a probe streaming an eviction set much larger
// than the L1 — is proven once two consecutive live runs end in the same
// machine state digest: digest(S2) == digest(S3) with S3 = B(S2) means
// B(S3) = S3, and the third run's deltas are the steady-state deltas every
// later run repeats. The machine state generation (bumped by every live
// access run and every flush, machine-wide) guarantees nothing touched a
// cache or TLB between the runs being compared. The prime/probe/traverse
// inner loops of the attacks re-issue the same trace many times per
// timeslice, which is where the sweep's wall time goes.
// BatchScope mask of a live run, from its stat deltas: a structure moved a
// tally iff the run probed it (see BatchScope). Prefetcher slots and the
// DRAM row memo are only read on LLC demand misses; a back-invalidate may
// have reached any core's private caches without a stat moving there.
std::uint32_t Core::ScopeOf(const ReplayDeltas& d) {
  auto touched = [](const StructStats& s) {
    return (s.hits | s.misses | s.writebacks) != 0;
  };
  std::uint32_t scope = 0;
  if (touched(d.l1i)) scope |= kScopeL1I;
  if (touched(d.l1d)) scope |= kScopeL1D;
  if (touched(d.l2)) scope |= kScopeL2;
  if (touched(d.llc)) scope |= kScopeLlc;
  if (touched(d.itlb)) scope |= kScopeItlb;
  if (touched(d.dtlb)) scope |= kScopeDtlb;
  if (touched(d.l2tlb)) scope |= kScopeL2Tlb;
  if (d.llc.misses != 0) scope |= kScopePrefetch;
  if (d.back_invals != 0) {
    scope |= kScopeL1I | kScopeL1D | kScopeL2 | kScopeXCores;
  }
  return scope;
}

Cycles Core::AccessBatch(std::span<const VAddr> vaddrs, AccessKind kind) {
  if (vaddrs.empty()) {
    return 0;
  }
  switch (kind) {
    case AccessKind::kRead:
      counters_.reads += vaddrs.size();
      break;
    case AccessKind::kWrite:
      counters_.writes += vaddrs.size();
      break;
    case AccessKind::kFetch:
      counters_.fetches += vaddrs.size();
      break;
  }
  const bool instruction = kind == AccessKind::kFetch;
  BatchMemo* memo = nullptr;       // record slot whose pre-state is known
  BatchMemo* keymate = nullptr;    // same batch, pre-state unrecognised
  bool keymate_viable = false;     // keymate can still be rendezvoused with
  if (batch_replay_on_) {
    std::uint64_t hash = 0;
    bool hashed = false;
    for (BatchMemo& m : batch_memos_) {
      if (m.data != vaddrs.data() || m.size != vaddrs.size() || m.kind != kind ||
          m.user_ctx != user_ctx_ || m.kernel_ctx != kernel_ctx_ ||
          m.user_gen != *user_gen_ || m.kernel_gen != *kernel_gen_ ||
          m.taint_owner != taint_owner_ || m.domain_tag != domain_tag_ ||
          m.kernel_global != kernel_global_) {
        continue;
      }
      if (!hashed) {
        hash = HashBatch(vaddrs);
        hashed = true;
      }
      if (m.content_hash != hash) {
        continue;
      }
      if (m.state_gen == machine_->state_gen()) {
        // Nothing touched a cache or TLB since the recorded run: the
        // machine still sits at that run's post-state.
        if (m.verified) {
          ApplyReplay(m.deltas);
          return m.deltas.total;
        }
        memo = &m;
        break;
      }
      // Cross-timeslice rendezvous: intervening work moved the generation,
      // but if the scoped digest of the current state matches the memo's
      // post-state digest, the run's entire visible state is back where the
      // recorded run left it (a probe kernel re-entered after a switch).
      // Only worth a fold when it is cheaper than the run it may elide, and
      // damped once the pre-state stops recurring.
      keymate = &m;
      keymate_viable = m.digest_post != 0 && m.fail_streak < kMaxFailStreak &&
                       machine_->ScopedDigestBytes(m.scope, id_) <=
                           m.deltas.total * kDigestBytesPerCycle;
      if (!keymate_viable) {
        break;
      }
      if (machine_->ScopedDigest(m.scope, id_) != m.digest_post) {
        ++m.fail_streak;
        break;
      }
      m.fail_streak = 0;
      m.state_gen = machine_->state_gen();
      if (m.verified) {
        ApplyReplay(m.deltas);
        return m.deltas.total;
      }
      memo = &m;
      keymate = nullptr;
      break;
    }
  }
  machine_->BumpStateGen();
  const StatSnapshot before = TakeStats();
  const Cycles base = lat().base_op;
  Cycles total = 0;
  for (VAddr va : vaddrs) {
    Cycles cost = base;
    Translation tr = TranslateCharged(va, instruction, cost);
    total += cost + CachePath(va, tr.paddr + PageOffset(va), kind);
  }
  cycles_ += total;
  if (!batch_replay_on_) {
    return total;
  }
  const ReplayDeltas deltas = DiffStats(before, total);
  const std::uint32_t scope = ScopeOf(deltas);
  const bool state_known = memo != nullptr;
  if (memo == nullptr) {
    if (keymate != nullptr) {
      if (keymate->verified && keymate_viable && keymate->fail_streak <= 1) {
        // The batch ran from an unrecognised state (e.g. the warm-up probe
        // right after a domain switch perturbed the scope) while a fixpoint
        // memo the next probe can rendezvous with exists for it: keep the
        // fixpoint. Only the first miss is forgiven — two in a row mean the
        // stored fixpoint went stale (the steady state drifted), and the
        // memo is refreshed below so convergence re-anchors to the state
        // that actually recurs.
        return total;
      }
      memo = keymate;  // stale or unrecognisable record: refresh in place
    } else {
      // Claim a slot, preferring one not holding a proven fixpoint.
      for (std::size_t i = 0; i < kBatchMemos; ++i) {
        const std::size_t idx = (batch_memo_next_ + i) % kBatchMemos;
        if (!batch_memos_[idx].verified) {
          batch_memo_next_ = idx;
          break;
        }
      }
      memo = &batch_memos_[batch_memo_next_];
      batch_memo_next_ = (batch_memo_next_ + 1) % kBatchMemos;
    }
    memo->data = vaddrs.data();
    memo->size = vaddrs.size();
    memo->kind = kind;
    memo->content_hash = HashBatch(vaddrs);
    memo->user_ctx = user_ctx_;
    memo->kernel_ctx = kernel_ctx_;
    memo->user_gen = *user_gen_;
    memo->kernel_gen = *kernel_gen_;
    memo->taint_owner = taint_owner_;
    memo->domain_tag = domain_tag_;
    memo->kernel_global = kernel_global_;
    memo->digest_post = 0;
    memo->verified = false;
  }
  const bool all_hit = deltas.itlb.misses + deltas.dtlb.misses == 0 &&
                       deltas.l1i.misses + deltas.l1d.misses == 0;
  if (all_hit) {
    // All-hit run: fixpoint by the analytic argument, no digest needed (no
    // miss anywhere implies no fill, insert, writeback, walk or prefetch
    // train; promotes and dirty/taint writes are idempotent).
    memo->verified = true;
    memo->digest_post = 0;
  } else if (state_known) {
    // Fold the touched scope. Only convergence candidates (known
    // pre-state) digest: the batch demonstrably re-runs, and one fold can
    // unlock a whole timeslice of replays. First sightings never digest —
    // a batch whose pre-state is only ever seen once cannot rendezvous,
    // and the fold would be pure cost.
    const std::uint64_t digest = machine_->ScopedDigest(scope, id_);
    memo->verified = state_known && memo->digest_post != 0 &&
                     memo->scope == scope && memo->digest_post == digest;
    memo->digest_post = digest;
  } else {
    memo->verified = false;
    memo->digest_post = 0;
  }
  memo->scope = scope;
  memo->fail_streak = 0;
  memo->deltas = deltas;
  memo->state_gen = machine_->state_gen();
  return total;
}

Core::StatSnapshot Core::TakeStats() const {
  StatSnapshot s;
  s.c[0] = counters_.l1d_misses;
  s.c[1] = counters_.l1i_misses;
  s.c[2] = counters_.l2_misses;
  s.c[3] = counters_.llc_misses;
  s.c[4] = counters_.tlb_misses;
  s.c[5] = counters_.page_walks;
  s.c[6] = machine_->back_invalidate_count();
  const SetAssociativeCache* caches[4] = {l1i_.get(), l1d_.get(), l2_.get(),
                                          &machine_->llc()};
  for (int i = 0; i < 4; ++i) {
    if (caches[i] != nullptr) {
      s.s[i] = StructStats{caches[i]->hits(), caches[i]->misses(),
                           caches[i]->writebacks()};
    } else {
      s.s[i] = StructStats{};
    }
  }
  const Tlb* tlbs[3] = {itlb_.get(), dtlb_.get(), l2tlb_.get()};
  for (int i = 0; i < 3; ++i) {
    s.s[4 + i] = StructStats{tlbs[i]->hits(), tlbs[i]->misses(), 0};
  }
  return s;
}

Core::ReplayDeltas Core::DiffStats(const StatSnapshot& before, Cycles total) const {
  const StatSnapshot after = TakeStats();
  ReplayDeltas d;
  d.l1d_misses = after.c[0] - before.c[0];
  d.l1i_misses = after.c[1] - before.c[1];
  d.l2_misses = after.c[2] - before.c[2];
  d.llc_misses = after.c[3] - before.c[3];
  d.tlb_misses = after.c[4] - before.c[4];
  d.page_walks = after.c[5] - before.c[5];
  d.back_invals = after.c[6] - before.c[6];
  StructStats* out[7] = {&d.l1i, &d.l1d, &d.l2, &d.llc, &d.itlb, &d.dtlb, &d.l2tlb};
  for (int i = 0; i < 7; ++i) {
    out[i]->hits = after.s[i].hits - before.s[i].hits;
    out[i]->misses = after.s[i].misses - before.s[i].misses;
    out[i]->writebacks = after.s[i].writebacks - before.s[i].writebacks;
  }
  d.total = total;
  return d;
}

void Core::ApplyReplay(const ReplayDeltas& d) {
  counters_.l1d_misses += d.l1d_misses;
  counters_.l1i_misses += d.l1i_misses;
  counters_.l2_misses += d.l2_misses;
  counters_.llc_misses += d.llc_misses;
  counters_.tlb_misses += d.tlb_misses;
  counters_.page_walks += d.page_walks;
  l1i_->AddReplayStats(d.l1i.hits, d.l1i.misses, d.l1i.writebacks);
  l1d_->AddReplayStats(d.l1d.hits, d.l1d.misses, d.l1d.writebacks);
  if (l2_ != nullptr) {
    l2_->AddReplayStats(d.l2.hits, d.l2.misses, d.l2.writebacks);
  }
  machine_->llc().AddReplayStats(d.llc.hits, d.llc.misses, d.llc.writebacks);
  itlb_->AddReplayStats(d.itlb.hits, d.itlb.misses);
  dtlb_->AddReplayStats(d.dtlb.hits, d.dtlb.misses);
  l2tlb_->AddReplayStats(d.l2tlb.hits, d.l2tlb.misses);
  cycles_ += d.total;
}

void Core::DigestState(std::uint64_t& h) const {
  l1i_->DigestState(h);
  l1d_->DigestState(h);
  if (l2_ != nullptr) {
    l2_->DigestState(h);
  }
  itlb_->DigestState(h);
  dtlb_->DigestState(h);
  l2tlb_->DigestState(h);
  prefetcher_->DigestState(h);
  DigestWord(h, last_miss_line_);
}

void Core::DigestScoped(std::uint64_t& h, std::uint32_t scope) const {
  if ((scope & kScopeL1I) != 0) l1i_->DigestState(h);
  if ((scope & kScopeL1D) != 0) l1d_->DigestState(h);
  if ((scope & kScopeL2) != 0 && l2_ != nullptr) l2_->DigestState(h);
  if ((scope & kScopeItlb) != 0) itlb_->DigestState(h);
  if ((scope & kScopeDtlb) != 0) dtlb_->DigestState(h);
  if ((scope & kScopeL2Tlb) != 0) l2tlb_->DigestState(h);
  if ((scope & kScopePrefetch) != 0) {
    prefetcher_->DigestState(h);
    DigestWord(h, last_miss_line_);
  }
}

void Core::DigestPrivateCaches(std::uint64_t& h) const {
  l1i_->DigestState(h);
  l1d_->DigestState(h);
  if (l2_ != nullptr) {
    l2_->DigestState(h);
  }
}

std::size_t Core::DigestBytesScoped(std::uint32_t scope) const {
  std::size_t bytes = 0;
  if ((scope & kScopeL1I) != 0) bytes += l1i_->DigestSizeBytes();
  if ((scope & kScopeL1D) != 0) bytes += l1d_->DigestSizeBytes();
  if ((scope & kScopeL2) != 0 && l2_ != nullptr) bytes += l2_->DigestSizeBytes();
  if ((scope & kScopeItlb) != 0) bytes += itlb_->DigestSizeBytes();
  if ((scope & kScopeDtlb) != 0) bytes += dtlb_->DigestSizeBytes();
  if ((scope & kScopeL2Tlb) != 0) bytes += l2tlb_->DigestSizeBytes();
  if ((scope & kScopePrefetch) != 0) bytes += prefetcher_->DigestSizeBytes();
  return bytes;
}

Cycles Core::AccessBatch(std::span<const MemOp> ops) {
  if (ops.empty()) {
    return 0;
  }
  machine_->BumpStateGen();
  const Cycles base = lat().base_op;
  Cycles total = 0;
  for (const MemOp& op : ops) {
    switch (op.kind) {
      case AccessKind::kRead:
        ++counters_.reads;
        break;
      case AccessKind::kWrite:
        ++counters_.writes;
        break;
      case AccessKind::kFetch:
        ++counters_.fetches;
        break;
    }
    Cycles cost = base;
    Translation tr = TranslateCharged(op.va, op.kind == AccessKind::kFetch, cost);
    total += cost + CachePath(op.va, tr.paddr + PageOffset(op.va), op.kind);
  }
  cycles_ += total;
  return total;
}

Cycles Core::Branch(VAddr pc, VAddr target, bool taken, bool conditional) {
  ++counters_.branches;
  BranchResult r = bp_->Branch(pc, target, taken, conditional);
  Cycles cost = lat().base_op + r.penalty;
  if (r.mispredicted) {
    ++counters_.mispredicts;
  }
  cycles_ += cost;
  return cost;
}

Cycles Core::ArchFlushL1D() {
  if (!machine_->config().has_architected_l1_flush) {
    throw std::logic_error("architected L1-D flush not available on this platform");
  }
  machine_->BumpStateGen();
  const Latencies& L = lat();
  std::size_t lines = l1d_->geometry().TotalLines();
  std::size_t dirty = l1d_->FlushAll();
  Cycles cost = static_cast<Cycles>(lines) * L.flush_per_line +
                static_cast<Cycles>(dirty) * L.flush_dirty_extra;
  cycles_ += cost;
  return cost;
}

Cycles Core::InvalidateL1I() {
  machine_->BumpStateGen();
  const Latencies& L = lat();
  std::size_t lines = l1i_->geometry().TotalLines();
  l1i_->InvalidateAll();
  Cycles cost = static_cast<Cycles>(lines) * 1;  // invalidate-only, no write-back
  (void)L;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushPrivateL2() {
  if (l2_ == nullptr) {
    return 0;
  }
  machine_->BumpStateGen();
  const Latencies& L = lat();
  std::size_t lines = l2_->geometry().TotalLines();
  std::size_t dirty = l2_->FlushAll();
  Cycles cost = static_cast<Cycles>(lines) * L.flush_per_line +
                static_cast<Cycles>(dirty) * L.flush_dirty_extra;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushTlbAll() {
  machine_->BumpStateGen();
  itlb_->FlushAll();
  dtlb_->FlushAll();
  l2tlb_->FlushAll();
  Cycles cost = lat().tlb_flush;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushTlbNonGlobal() {
  machine_->BumpStateGen();
  itlb_->FlushNonGlobal();
  dtlb_->FlushNonGlobal();
  l2tlb_->FlushNonGlobal();
  Cycles cost = lat().tlb_flush;
  cycles_ += cost;
  return cost;
}

Cycles Core::FlushBranchPredictor() {
  bp_->FlushAll();
  Cycles cost = lat().bp_flush;
  cycles_ += cost;
  return cost;
}

Cycles Core::FullCacheFlush(bool include_llc) {
  machine_->BumpStateGen();
  const Latencies& L = lat();
  Cycles cost = 0;

  std::size_t l1d_lines = l1d_->geometry().TotalLines();
  std::size_t l1d_dirty = l1d_->FlushAll();
  cost += static_cast<Cycles>(l1d_lines) * L.flush_per_line +
          static_cast<Cycles>(l1d_dirty) * L.flush_dirty_extra;
  cost += static_cast<Cycles>(l1i_->InvalidateAll()) * 1;

  if (l2_ != nullptr) {
    std::size_t l2_lines = l2_->geometry().TotalLines();
    std::size_t l2_dirty = l2_->FlushAll();
    cost += static_cast<Cycles>(l2_lines) * L.flush_per_line +
            static_cast<Cycles>(l2_dirty) * L.flush_dirty_extra;
  }

  if (include_llc) {
    SetAssociativeCache& llc = machine_->llc();
    std::size_t llc_lines = llc.geometry().TotalLines();
    std::size_t llc_dirty = llc.FlushAll();
    cost += static_cast<Cycles>(llc_lines) * L.flush_per_line +
            static_cast<Cycles>(llc_dirty) * L.flush_dirty_extra;
  }

  cycles_ += cost;
  return cost;
}

void Core::BackInvalidateLine(PAddr line_paddr) {
  l1d_->InvalidateLineByPaddr(line_paddr);
  l1i_->InvalidateLineByPaddr(line_paddr);
  if (l2_ != nullptr) {
    l2_->InvalidateLineByPaddr(line_paddr);
  }
}

}  // namespace tp::hw
