// Whole-platform assembly: cores, shared LLC, interrupt controller, device
// timers, and a physical-memory extent. Presets encode the two evaluation
// platforms of paper Table 1.
#ifndef TP_HW_MACHINE_HPP_
#define TP_HW_MACHINE_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cache.hpp"
#include "hw/core.hpp"
#include "hw/interrupt_controller.hpp"
#include "hw/timer.hpp"
#include "hw/tlb.hpp"
#include "hw/types.hpp"

namespace tp::hw {

enum class Arch {
  kX86,
  kArm,
};

struct MachineConfig {
  std::string name;
  Arch arch = Arch::kX86;
  double clock_ghz = 1.0;
  std::size_t num_cores = 4;

  CacheGeometry l1i;
  CacheGeometry l1d;
  bool has_private_l2 = false;
  CacheGeometry l2;   // private, per core (x86 only)
  CacheGeometry llc;  // shared last-level cache (x86 L3 / Arm L2)

  TlbGeometry itlb;
  TlbGeometry dtlb;
  TlbGeometry l2tlb;

  BranchPredictorGeometry bp;
  PrefetcherGeometry prefetcher;
  Latencies lat;

  IrqArch irq_arch = IrqArch::kX86Hierarchical;
  std::size_t irq_lines = 64;
  std::size_t device_timers = 4;  // user-assignable one-shot timers

  std::uint64_t ram_bytes = std::uint64_t{1} << 30;

  // Arm has architected L1 set/way flushes (DCCISW); Haswell-era x86 does
  // not, forcing the "manual" flush of paper §4.3.
  bool has_architected_l1_flush = false;

  // Core i7-4770 per Table 1 (8 MiB 16-way LLC over 4 slices -> 32 colours,
  // 256 KiB 8-way private L2 -> 8 colours).
  static MachineConfig Haswell(std::size_t cores = 4);
  // i.MX6Q Sabre per Table 1 (1 MiB 16-way shared L2-as-LLC -> 16 colours).
  static MachineConfig Sabre(std::size_t cores = 4);
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Core& core(std::size_t i) { return *cores_.at(i); }
  std::size_t num_cores() const { return cores_.size(); }
  SetAssociativeCache& llc() { return *llc_; }
  InterruptController& irq_controller() { return irqc_; }

  // Device timers raise their IRQ line when polled past their deadline.
  OneShotTimer& device_timer(std::size_t i) { return device_timers_.at(i); }
  std::size_t num_device_timers() const { return device_timers_.size(); }
  // Raises IRQs for expired device timers, judged against `now`.
  void PollDeviceTimers(Cycles now);

  // Inclusive-LLC back-invalidation: drop the line from every core's
  // private caches (it was evicted from the LLC).
  void BackInvalidateLine(PAddr line_paddr);

  double CyclesToMicros(Cycles c) const {
    return static_cast<double>(c) / (config_.clock_ghz * 1000.0);
  }
  Cycles MicrosToCycles(double us) const {
    return static_cast<Cycles>(us * config_.clock_ghz * 1000.0);
  }
  double CyclesToMillis(Cycles c) const { return CyclesToMicros(c) / 1000.0; }

  const MachineConfig& config() const { return config_; }

  // Monotone count of cache/TLB-mutating episodes anywhere on the machine:
  // every live access run and every flush bumps it. Core's batch-replay
  // memos validate against it — an unchanged generation proves no cache or
  // TLB was touched since the memo was recorded, so the machine still sits
  // at that batch's fixpoint state. Replays mutate nothing and therefore do
  // not bump it. Branch-predictor state is deliberately outside the
  // generation: batches never touch it.
  std::uint64_t state_gen() const { return state_gen_; }
  void BumpStateGen() { ++state_gen_; }

  // Digest of every structure a batched access can read or write: the
  // shared LLC plus each core's caches, TLBs, prefetcher and DRAM row memo.
  // Two identical digests mean identical batch-visible machine state; the
  // replay memo uses this to prove a re-run batch sits at its fixpoint.
  std::uint64_t StateDigest() const;

  // Digest of only the structures in `scope` (BatchScope bits) as seen from
  // `core`: the shared LLC if scoped, that core's scoped structures, and —
  // under kScopeXCores — every other core's private cache levels. Results
  // are memoised against the state generation: digests of an unchanged
  // machine are served from cache, so several memo lookups (or a lookup
  // right after a replay, which mutates nothing) fold the state once.
  std::uint64_t ScopedDigest(std::uint32_t scope, std::size_t core);
  // The same fold without the generation-keyed memo: const, so invariant
  // checkers can digest a machine they only hold const access to and
  // cross-check that the cached path returns the identical value.
  std::uint64_t ScopedDigestUncached(std::uint32_t scope, std::size_t core) const;
  // Bytes ScopedDigest would fold — the cost side of the replay-memo gate.
  std::size_t ScopedDigestBytes(std::uint32_t scope, std::size_t core) const;

  // Machine-wide count of inclusive-LLC back-invalidations. A batch that
  // evicted an LLC line may have silently invalidated another core's
  // private copy (no stat moves there); the replay memo widens its scope
  // to every core's private caches when this moved across a run.
  std::uint64_t back_invalidate_count() const { return back_invalidate_count_; }

 private:
  MachineConfig config_;
  std::uint64_t state_gen_ = 0;
  std::uint64_t back_invalidate_count_ = 0;
  struct ScopedDigestCacheEntry {
    std::uint64_t gen = ~std::uint64_t{0};
    std::uint32_t scope = 0;
    std::size_t core = 0;
    std::uint64_t digest = 0;
  };
  ScopedDigestCacheEntry digest_cache_[4];
  std::size_t digest_cache_next_ = 0;
  std::unique_ptr<SetAssociativeCache> llc_;
  InterruptController irqc_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<OneShotTimer> device_timers_;
};

}  // namespace tp::hw

#endif  // TP_HW_MACHINE_HPP_
