// Whole-platform assembly: cores, shared LLC, interrupt controller, device
// timers, and a physical-memory extent. Presets encode the two evaluation
// platforms of paper Table 1.
#ifndef TP_HW_MACHINE_HPP_
#define TP_HW_MACHINE_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cache.hpp"
#include "hw/core.hpp"
#include "hw/interrupt_controller.hpp"
#include "hw/timer.hpp"
#include "hw/tlb.hpp"
#include "hw/types.hpp"

namespace tp::hw {

enum class Arch {
  kX86,
  kArm,
};

struct MachineConfig {
  std::string name;
  Arch arch = Arch::kX86;
  double clock_ghz = 1.0;
  std::size_t num_cores = 4;

  CacheGeometry l1i;
  CacheGeometry l1d;
  bool has_private_l2 = false;
  CacheGeometry l2;   // private, per core (x86 only)
  CacheGeometry llc;  // shared last-level cache (x86 L3 / Arm L2)

  TlbGeometry itlb;
  TlbGeometry dtlb;
  TlbGeometry l2tlb;

  BranchPredictorGeometry bp;
  PrefetcherGeometry prefetcher;
  Latencies lat;

  IrqArch irq_arch = IrqArch::kX86Hierarchical;
  std::size_t irq_lines = 64;
  std::size_t device_timers = 4;  // user-assignable one-shot timers

  std::uint64_t ram_bytes = std::uint64_t{1} << 30;

  // Arm has architected L1 set/way flushes (DCCISW); Haswell-era x86 does
  // not, forcing the "manual" flush of paper §4.3.
  bool has_architected_l1_flush = false;

  // Core i7-4770 per Table 1 (8 MiB 16-way LLC over 4 slices -> 32 colours,
  // 256 KiB 8-way private L2 -> 8 colours).
  static MachineConfig Haswell(std::size_t cores = 4);
  // i.MX6Q Sabre per Table 1 (1 MiB 16-way shared L2-as-LLC -> 16 colours).
  static MachineConfig Sabre(std::size_t cores = 4);
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Core& core(std::size_t i) { return *cores_.at(i); }
  std::size_t num_cores() const { return cores_.size(); }
  SetAssociativeCache& llc() { return *llc_; }
  InterruptController& irq_controller() { return irqc_; }

  // Device timers raise their IRQ line when polled past their deadline.
  OneShotTimer& device_timer(std::size_t i) { return device_timers_.at(i); }
  std::size_t num_device_timers() const { return device_timers_.size(); }
  // Raises IRQs for expired device timers, judged against `now`.
  void PollDeviceTimers(Cycles now);

  // Inclusive-LLC back-invalidation: drop the line from every core's
  // private caches (it was evicted from the LLC).
  void BackInvalidateLine(PAddr line_paddr);

  double CyclesToMicros(Cycles c) const {
    return static_cast<double>(c) / (config_.clock_ghz * 1000.0);
  }
  Cycles MicrosToCycles(double us) const {
    return static_cast<Cycles>(us * config_.clock_ghz * 1000.0);
  }
  double CyclesToMillis(Cycles c) const { return CyclesToMicros(c) / 1000.0; }

  const MachineConfig& config() const { return config_; }

 private:
  MachineConfig config_;
  std::unique_ptr<SetAssociativeCache> llc_;
  InterruptController irqc_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<OneShotTimer> device_timers_;
};

}  // namespace tp::hw

#endif  // TP_HW_MACHINE_HPP_
